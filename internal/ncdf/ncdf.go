// Package ncdf is the comparison baseline modelled on the classic
// netCDF file format: a header, fixed-size variables, then "records" —
// one slice per variable along the single unlimited (record) dimension,
// interleaved record by record.
//
// Two structural properties matter for the paper's comparison:
//
//  1. Exactly one dimension (the record dimension) is extendible;
//     growing any fixed dimension requires a "redefine" that rewrites
//     the whole file (RedefExtend accounts the moved bytes).
//  2. Record interleaving of multiple variables makes single-variable
//     scans strided: reading records [lo,hi) of one variable costs one
//     seek per record once other record variables exist.
package ncdf

import (
	"fmt"

	"drxmp/internal/dtype"
	"drxmp/internal/grid"
	"drxmp/internal/pfs"
)

// Var declares one record variable: its element type and per-record
// shape (the fixed dimensions; the record dimension is implicit).
type Var struct {
	Name  string
	DType dtype.T
	Fixed grid.Shape
}

// sliceBytes returns the byte size of one record slice of v.
func (v Var) sliceBytes() int64 {
	return v.Fixed.Volume() * int64(v.DType.Size())
}

// HeaderBytes is the modelled fixed header size.
const HeaderBytes = 1024

// File is a netCDF-like dataset.
type File struct {
	vars    []Var
	offs    []int64 // displacement of each variable within a record
	stride  int64   // record stride (sum of slice sizes)
	numRecs int
	fs      *pfs.FS

	// BytesMoved accumulates redefine (reorganization) traffic.
	BytesMoved int64
	// Redefines counts full-file rewrites.
	Redefines int64
}

// Create builds a dataset with the given record variables and zero
// records.
func Create(name string, vars []Var, fsOpts pfs.Options) (*File, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("ncdf: no variables")
	}
	f := &File{vars: append([]Var(nil), vars...)}
	var at int64
	for i, v := range vars {
		if !v.DType.Valid() {
			return nil, fmt.Errorf("ncdf: variable %q: invalid dtype", v.Name)
		}
		if len(v.Fixed) > 0 && !v.Fixed.Positive() {
			return nil, fmt.Errorf("ncdf: variable %q: fixed shape %v", v.Name, v.Fixed)
		}
		f.offs = append(f.offs, at)
		at += v.sliceBytes()
		_ = i
	}
	f.stride = at
	fs, err := pfs.Create(name+".nc", fsOpts)
	if err != nil {
		return nil, err
	}
	f.fs = fs
	if err := fs.Truncate(HeaderBytes); err != nil {
		return nil, err
	}
	return f, nil
}

// Close releases the backing store.
func (f *File) Close() error { return f.fs.Close() }

// FS exposes the backing store.
func (f *File) FS() *pfs.FS { return f.fs }

// NumRecords returns the current record count.
func (f *File) NumRecords() int { return f.numRecs }

// NumVars returns the variable count.
func (f *File) NumVars() int { return len(f.vars) }

// VarInfo returns variable v's declaration.
func (f *File) VarInfo(v int) (Var, error) {
	if v < 0 || v >= len(f.vars) {
		return Var{}, fmt.Errorf("ncdf: variable %d of %d", v, len(f.vars))
	}
	return f.vars[v], nil
}

// RecordStride returns the byte distance between consecutive records.
func (f *File) RecordStride() int64 { return f.stride }

// ExtendRecords appends `by` records (the cheap, supported extension).
func (f *File) ExtendRecords(by int) error {
	if by < 1 {
		return fmt.Errorf("ncdf: extend by %d", by)
	}
	f.numRecs += by
	return f.fs.Truncate(HeaderBytes + int64(f.numRecs)*f.stride)
}

// recOff returns the byte offset of variable v's slice in record r.
func (f *File) recOff(v, r int) int64 {
	return HeaderBytes + int64(r)*f.stride + f.offs[v]
}

// WriteVar writes records [recLo, recHi) of variable v from buf (dense,
// record-major, row-major within each record slice).
func (f *File) WriteVar(v, recLo, recHi int, buf []byte) error {
	return f.varIO(v, recLo, recHi, buf, true)
}

// ReadVar reads records [recLo, recHi) of variable v into buf.
func (f *File) ReadVar(v, recLo, recHi int, buf []byte) error {
	return f.varIO(v, recLo, recHi, buf, false)
}

func (f *File) varIO(v, recLo, recHi int, buf []byte, write bool) error {
	if v < 0 || v >= len(f.vars) {
		return fmt.Errorf("ncdf: variable %d of %d", v, len(f.vars))
	}
	if recLo < 0 || recHi > f.numRecs || recLo > recHi {
		return fmt.Errorf("ncdf: records [%d,%d) outside [0,%d)", recLo, recHi, f.numRecs)
	}
	sb := f.vars[v].sliceBytes()
	need := sb * int64(recHi-recLo)
	if int64(len(buf)) < need {
		return fmt.Errorf("ncdf: buffer of %d bytes for %d-byte range", len(buf), need)
	}
	var at int64
	for r := recLo; r < recHi; r++ {
		seg := buf[at : at+sb]
		var err error
		if write {
			_, err = f.fs.WriteAt(seg, f.recOff(v, r))
		} else {
			_, err = f.fs.ReadAt(seg, f.recOff(v, r))
		}
		if err != nil {
			return err
		}
		at += sb
	}
	return nil
}

// RedefExtend grows fixed dimension dim of variable v by `by` indices —
// netCDF's "redefine" path. The record stride changes, so every record
// of every variable relocates; the whole data section is rewritten and
// the traffic accounted in BytesMoved.
func (f *File) RedefExtend(v, dim, by int) error {
	if v < 0 || v >= len(f.vars) {
		return fmt.Errorf("ncdf: variable %d of %d", v, len(f.vars))
	}
	if dim < 0 || dim >= len(f.vars[v].Fixed) {
		return fmt.Errorf("ncdf: fixed dimension %d of %d", dim, len(f.vars[v].Fixed))
	}
	if by < 1 {
		return fmt.Errorf("ncdf: extend by %d", by)
	}
	oldVars := append([]Var(nil), f.vars...)
	oldOffs := append([]int64(nil), f.offs...)
	oldStride := f.stride

	newVars := append([]Var(nil), f.vars...)
	newFixed := newVars[v].Fixed.Clone()
	newFixed[dim] += by
	newVars[v].Fixed = newFixed

	newOffs := make([]int64, len(newVars))
	var at int64
	for i, nv := range newVars {
		newOffs[i] = at
		at += nv.sliceBytes()
	}
	newStride := at

	// Relocate record by record, from the last record to the first (new
	// offsets only grow). Within a record, variables after v also shift;
	// grown variable slices are padded with zeros row by row.
	for r := f.numRecs - 1; r >= 0; r-- {
		for i := len(oldVars) - 1; i >= 0; i-- {
			oldOff := HeaderBytes + int64(r)*oldStride + oldOffs[i]
			newOff := HeaderBytes + int64(r)*newStride + newOffs[i]
			if i != v {
				if oldOff == newOff {
					continue
				}
				sb := oldVars[i].sliceBytes()
				buf := make([]byte, sb)
				if _, err := f.fs.ReadAt(buf, oldOff); err != nil {
					return err
				}
				if _, err := f.fs.WriteAt(buf, newOff); err != nil {
					return err
				}
				f.BytesMoved += 2 * sb
				continue
			}
			// The grown variable: re-layout its slice (row-major with a
			// larger extent along dim).
			oldSB := oldVars[i].sliceBytes()
			newSB := newVars[i].sliceBytes()
			oldBuf := make([]byte, oldSB)
			if _, err := f.fs.ReadAt(oldBuf, oldOff); err != nil {
				return err
			}
			newBuf := make([]byte, newSB)
			es := int64(oldVars[i].DType.Size())
			oldStr := grid.Strides(oldVars[i].Fixed, grid.RowMajor)
			newStr := grid.Strides(newVars[i].Fixed, grid.RowMajor)
			grid.BoxOf(oldVars[i].Fixed).Rows(grid.RowMajor, func(start []int, n int) bool {
				var o, nw int64
				for d, sIdx := range start {
					o += int64(sIdx) * oldStr[d]
					nw += int64(sIdx) * newStr[d]
				}
				copy(newBuf[nw*es:(nw+int64(n))*es], oldBuf[o*es:(o+int64(n))*es])
				return true
			})
			if _, err := f.fs.WriteAt(newBuf, newOff); err != nil {
				return err
			}
			f.BytesMoved += oldSB + newSB
		}
	}
	f.vars = newVars
	f.offs = newOffs
	f.stride = newStride
	f.Redefines++
	return f.fs.Truncate(HeaderBytes + int64(f.numRecs)*f.stride)
}
