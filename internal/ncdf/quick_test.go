package ncdf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"drxmp/internal/dtype"
	"drxmp/internal/grid"
	"drxmp/internal/pfs"
)

// TestQuickRecordRoundTrip drives random interleavings of record
// appends and variable writes/reads against per-variable shadow
// buffers: record interleaving on disk must be invisible to the
// variable-oriented API.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 1 + rng.Intn(3)
		vars := make([]Var, nvars)
		for v := range vars {
			vars[v] = Var{
				Name:  string(rune('a' + v)),
				DType: dtype.Float64,
				Fixed: grid.Shape{1 + rng.Intn(4), 1 + rng.Intn(4)},
			}
		}
		f, err := Create("q", vars, pfs.Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		defer f.Close()

		// shadow[v][r] is record r of variable v.
		shadow := make([][][]byte, nvars)
		appendRecords := func(by int) error {
			if err := f.ExtendRecords(by); err != nil {
				return err
			}
			for v := range shadow {
				for i := 0; i < by; i++ {
					shadow[v] = append(shadow[v], make([]byte, vars[v].sliceBytes()))
				}
			}
			return nil
		}
		if err := appendRecords(1 + rng.Intn(3)); err != nil {
			t.Log(err)
			return false
		}
		for step := 0; step < 20; step++ {
			switch rng.Intn(4) {
			case 0:
				if err := appendRecords(1 + rng.Intn(3)); err != nil {
					t.Log(err)
					return false
				}
			case 1: // write a record range of one variable
				v := rng.Intn(nvars)
				lo := rng.Intn(f.NumRecords())
				hi := lo + 1 + rng.Intn(f.NumRecords()-lo)
				sz := int(vars[v].sliceBytes())
				buf := make([]byte, (hi-lo)*sz)
				for i := range buf {
					buf[i] = byte(rng.Intn(256))
				}
				if err := f.WriteVar(v, lo, hi, buf); err != nil {
					t.Logf("write var %d [%d,%d): %v", v, lo, hi, err)
					return false
				}
				for r := lo; r < hi; r++ {
					copy(shadow[v][r], buf[(r-lo)*sz:])
				}
			default: // read a record range and compare
				v := rng.Intn(nvars)
				lo := rng.Intn(f.NumRecords())
				hi := lo + 1 + rng.Intn(f.NumRecords()-lo)
				sz := int(vars[v].sliceBytes())
				buf := make([]byte, (hi-lo)*sz)
				if err := f.ReadVar(v, lo, hi, buf); err != nil {
					t.Logf("read var %d [%d,%d): %v", v, lo, hi, err)
					return false
				}
				for r := lo; r < hi; r++ {
					if !bytes.Equal(buf[(r-lo)*sz:(r-lo+1)*sz], shadow[v][r]) {
						t.Logf("step %d: var %d record %d diverged", step, v, r)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRedefPreservesData: redefining (growing a fixed dimension,
// which rewrites the whole file) must preserve every existing record
// byte-for-byte within the old shape.
func TestQuickRedefPreservesData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := Var{Name: "x", DType: dtype.Float64, Fixed: grid.Shape{2, 3}}
		f, err := Create("q2", []Var{v}, pfs.Options{})
		if err != nil {
			return false
		}
		defer f.Close()
		recs := 2 + rng.Intn(4)
		if err := f.ExtendRecords(recs); err != nil {
			return false
		}
		sz := int(v.sliceBytes())
		want := make([]byte, recs*sz)
		for i := range want {
			want[i] = byte(rng.Intn(256))
		}
		if err := f.WriteVar(0, 0, recs, want); err != nil {
			return false
		}
		// Grow the fixed shape 2x3 -> 2x4: a netCDF "redef" rewrite.
		moved := f.BytesMoved
		if err := f.RedefExtend(0, 1, 1); err != nil {
			return false
		}
		if f.BytesMoved <= moved {
			t.Log("redef moved no bytes")
			return false
		}
		// Old cells must still be present inside the grown slices.
		got := make([]byte, recs*2*4*8)
		if err := f.ReadVar(0, 0, recs, got); err != nil {
			return false
		}
		for r := 0; r < recs; r++ {
			for i := 0; i < 2; i++ {
				for j := 0; j < 3; j++ {
					oldOff := r*sz + (i*3+j)*8
					newOff := r*2*4*8 + (i*4+j)*8
					if !bytes.Equal(want[oldOff:oldOff+8], got[newOff:newOff+8]) {
						t.Logf("record %d cell (%d,%d) lost in redef", r, i, j)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
