package drxmp

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"drxmp/internal/cluster"
	"drxmp/internal/grid"
	"drxmp/internal/pfs"
	"drxmp/internal/zone"
)

func defaultOpts() Options {
	return Options{
		DType:      Float64,
		ChunkShape: []int{2, 3},
		Bounds:     []int{10, 10},
	}
}

func TestCreateReplicatesMetadata(t *testing.T) {
	blobs := make([][]byte, 4)
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "arr", defaultOpts())
		if err != nil {
			return err
		}
		blobs[c.Rank()] = f.Meta().Encode()
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if !bytes.Equal(blobs[0], blobs[r]) {
			t.Fatalf("rank %d metadata replica differs", r)
		}
	}
}

func TestCreateValidation(t *testing.T) {
	err := cluster.Run(2, func(c *cluster.Comm) error {
		if _, err := Create(c, "arr", Options{DType: Float64, ChunkShape: []int{0}, Bounds: []int{4}}); err == nil {
			return fmt.Errorf("bad chunk shape accepted")
		}
		if _, err := Create(c, "arr", Options{DType: Float64, ChunkShape: []int{2}, Bounds: []int{4}, Order: Order(7)}); err == nil {
			return fmt.Errorf("bad order accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFig1ZonesAndCollectiveRead is the end-to-end Fig. 1 scenario:
// grow a 2-D array of 2x3 chunks to the 5x4 grid via the paper's
// expansion history, verify the zones, write known data serially, and
// have 4 processes collectively read their zones.
func TestFig1ZonesAndCollectiveRead(t *testing.T) {
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "fig1", Options{
			DType:      Float64,
			ChunkShape: []int{2, 3},
			Bounds:     []int{2, 3}, // one chunk
		})
		if err != nil {
			return err
		}
		defer f.Close()
		// The paper's expansion history in element units (one chunk per
		// extension along the respective dimension).
		steps := []struct{ dim, by int }{
			{1, 3}, {0, 2}, {0, 2}, {1, 3}, {0, 2}, {1, 3}, {0, 2},
		}
		for _, s := range steps {
			if err := f.Extend(s.dim, s.by); err != nil {
				return err
			}
		}
		if got := f.Bounds(); !reflect.DeepEqual(got, []int{10, 12}) {
			return fmt.Errorf("bounds = %v", got)
		}
		if f.Chunks() != 20 {
			return fmt.Errorf("chunks = %d", f.Chunks())
		}
		// Zones must match the figure.
		d, err := f.Decomp()
		if err != nil {
			return err
		}
		wantZones := []Box{
			NewBox([]int{0, 0}, []int{3, 2}),
			NewBox([]int{0, 2}, []int{3, 4}),
			NewBox([]int{3, 0}, []int{5, 2}),
			NewBox([]int{3, 2}, []int{5, 4}),
		}
		zs := d.ZoneOf(c.Rank())
		if len(zs) != 1 || !zs[0].Equal(wantZones[c.Rank()]) {
			return fmt.Errorf("rank %d zone = %v, want %v", c.Rank(), zs, wantZones[c.Rank()])
		}
		// Rank 0 writes ground truth: value = 100*i + j.
		full := NewBox([]int{0, 0}, []int{10, 12})
		if c.Rank() == 0 {
			vals := make([]float64, full.Volume())
			at := 0
			for i := 0; i < 10; i++ {
				for j := 0; j < 12; j++ {
					vals[at] = float64(100*i + j)
					at++
				}
			}
			if err := f.WriteSectionFloat64s(full, vals, RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Everyone collectively reads its zone.
		my, err := f.MyZone()
		if err != nil {
			return err
		}
		if len(my) != 1 {
			return fmt.Errorf("rank %d has %d zone boxes", c.Rank(), len(my))
		}
		buf := make([]byte, my[0].Volume()*8)
		if err := f.ReadSectionAll(my[0], buf, RowMajor); err != nil {
			return err
		}
		sh := my[0].Shape()
		at := 0
		for i := my[0].Lo[0]; i < my[0].Hi[0]; i++ {
			for j := my[0].Lo[1]; j < my[0].Hi[1]; j++ {
				want := float64(100*i + j)
				got := f64(buf[at*8:])
				if got != want {
					return fmt.Errorf("rank %d zone (%d,%d) = %v, want %v", c.Rank(), i, j, got, want)
				}
				at++
			}
		}
		_ = sh
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func f64(p []byte) float64 {
	u := uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
	return math.Float64frombits(u)
}

func putF64bits(p []byte, v float64) {
	u := math.Float64bits(v)
	p[0], p[1], p[2], p[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
	p[4], p[5], p[6], p[7] = byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56)
}

// TestParallelWriteSerialRead: each rank writes its zone collectively,
// then rank 0 reads the full array and checks every element.
func TestParallelWriteSerialRead(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 6} {
		t.Run(fmt.Sprintf("P%d", ranks), func(t *testing.T) {
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				f, err := Create(c, "w", Options{
					DType:      Float64,
					ChunkShape: []int{3, 4},
					Bounds:     []int{11, 13},
				})
				if err != nil {
					return err
				}
				defer f.Close()
				my, err := f.MyZone()
				if err != nil {
					return err
				}
				var box Box
				if len(my) == 1 {
					box = my[0]
					vals := make([]float64, box.Volume())
					at := 0
					box.Iterate(grid.RowMajor, func(idx []int) bool {
						vals[at] = float64(1000*idx[0] + idx[1])
						at++
						return true
					})
					if err := f.WriteSectionAll(box, encodeF64(vals), RowMajor); err != nil {
						return err
					}
				} else {
					if err := f.WriteSectionAll(Box{Lo: []int{0, 0}, Hi: []int{0, 0}}, nil, RowMajor); err != nil {
						return err
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					full := NewBox([]int{0, 0}, []int{11, 13})
					got, err := f.ReadSectionFloat64s(full, RowMajor)
					if err != nil {
						return err
					}
					at := 0
					for i := 0; i < 11; i++ {
						for j := 0; j < 13; j++ {
							if got[at] != float64(1000*i+j) {
								return fmt.Errorf("(%d,%d) = %v", i, j, got[at])
							}
							at++
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func encodeF64(vals []float64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		putF64bits(out[i*8:], v)
	}
	return out
}

// TestParallelExtendNoReorganization is experiment E9's invariant: after
// a collective extension and parallel writes of the new region, the old
// region's bytes in the file are untouched.
func TestParallelExtendNoReorganization(t *testing.T) {
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "e9", Options{
			DType:      Float64,
			ChunkShape: []int{2, 2},
			Bounds:     []int{8, 8},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		full := NewBox([]int{0, 0}, []int{8, 8})
		if c.Rank() == 0 {
			vals := make([]float64, 64)
			for i := range vals {
				vals[i] = float64(i + 1)
			}
			if err := f.WriteSectionFloat64s(full, vals, RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Snapshot the raw file bytes of the original 16 chunks.
		before := make([]byte, 16*f.Meta().ChunkBytes())
		if _, err := f.FS().ReadAt(before, 0); err != nil {
			return err
		}
		// Collective extension along dimension 1, then every rank writes
		// a stripe of the new region.
		if err := f.Extend(1, 4); err != nil {
			return err
		}
		newBox := NewBox([]int{2 * c.Rank(), 8}, []int{2*c.Rank() + 2, 12})
		vals := make([]float64, newBox.Volume())
		for i := range vals {
			vals[i] = float64(-c.Rank() - 1)
		}
		if err := f.WriteSectionAll(newBox, encodeF64(vals), RowMajor); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		after := make([]byte, len(before))
		if _, err := f.FS().ReadAt(after, 0); err != nil {
			return err
		}
		if !bytes.Equal(before, after) {
			return fmt.Errorf("rank %d: original chunk bytes changed after parallel extension", c.Rank())
		}
		// And the new region holds what was written.
		if c.Rank() == 0 {
			got, err := f.ReadSectionFloat64s(NewBox([]int{0, 8}, []int{8, 12}), RowMajor)
			if err != nil {
				return err
			}
			for i, v := range got {
				wantRank := (i / 4) / 2 // row i/4, two rows per rank
				if v != float64(-wantRank-1) {
					return fmt.Errorf("new region elem %d = %v, want %v", i, v, float64(-wantRank-1))
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTransposedParallelRead: write in C order, every rank reads its
// zone in Fortran order; verify the permutation.
func TestTransposedParallelRead(t *testing.T) {
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "tr", defaultOpts())
		if err != nil {
			return err
		}
		defer f.Close()
		if c.Rank() == 0 {
			vals := make([]float64, 100)
			for i := range vals {
				vals[i] = float64(i)
			}
			if err := f.WriteSectionFloat64s(NewBox([]int{0, 0}, []int{10, 10}), vals, RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		my, err := f.MyZone()
		if err != nil {
			return err
		}
		box := my[0]
		buf := make([]byte, box.Volume()*8)
		if err := f.ReadSectionAll(box, buf, ColMajor); err != nil {
			return err
		}
		sh := box.Shape()
		for i := box.Lo[0]; i < box.Hi[0]; i++ {
			for j := box.Lo[1]; j < box.Hi[1]; j++ {
				off := grid.Offset(sh, []int{i - box.Lo[0], j - box.Lo[1]}, ColMajor)
				if got := f64(buf[off*8:]); got != float64(10*i+j) {
					return fmt.Errorf("rank %d (%d,%d) = %v", c.Rank(), i, j, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOwnerOf(t *testing.T) {
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "own", defaultOpts())
		if err != nil {
			return err
		}
		defer f.Close()
		// Every element's owner's zone must contain it.
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				r, err := f.OwnerOf([]int{i, j})
				if err != nil {
					return err
				}
				zb, err := f.ZoneBoxes(r)
				if err != nil {
					return err
				}
				found := false
				for _, b := range zb {
					if b.Contains([]int{i, j}) {
						found = true
					}
				}
				if !found {
					return fmt.Errorf("element (%d,%d): owner %d's zone misses it", i, j, r)
				}
			}
		}
		if _, err := f.OwnerOf([]int{10, 0}); err == nil {
			return fmt.Errorf("out-of-bounds OwnerOf accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDiskPersistenceParallel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "parr")
	opts := defaultOpts()
	opts.FS = pfs.Options{Backend: pfs.Disk, Servers: 3, StripeSize: 128, Dir: dir}
	err := cluster.Run(2, func(c *cluster.Comm) error {
		f, err := Create(c, path, opts)
		if err != nil {
			return err
		}
		my, err := f.MyZone()
		if err != nil {
			return err
		}
		box := my[0]
		vals := make([]float64, box.Volume())
		for i := range vals {
			vals[i] = float64(c.Rank()*1000 + i)
		}
		if err := f.WriteSectionAll(box, encodeF64(vals), RowMajor); err != nil {
			return err
		}
		if err := f.Extend(0, 5); err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-open with a different process count.
	err = cluster.Run(3, func(c *cluster.Comm) error {
		f, err := Open(c, path, pfs.Options{Servers: 3, StripeSize: 128, Dir: dir}, zone.Block, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		if got := f.Bounds(); !reflect.DeepEqual(got, []int{15, 10}) {
			return fmt.Errorf("reopened bounds = %v", got)
		}
		// Data written by the 2-rank run must be intact (spot check
		// rank-0-of-2's zone corner, which was (0,0)).
		got, err := f.ReadSectionFloat64s(NewBox([]int{0, 0}, []int{1, 1}), RowMajor)
		if err != nil {
			return err
		}
		if got[0] != 0 {
			return fmt.Errorf("corner = %v", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSectionValidation(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := Create(c, "v", defaultOpts())
		if err != nil {
			return err
		}
		defer f.Close()
		if err := f.ReadSection(NewBox([]int{0}, []int{1}), make([]byte, 8), RowMajor); err == nil {
			return fmt.Errorf("rank mismatch accepted")
		}
		if err := f.ReadSection(NewBox([]int{0, 0}, []int{11, 1}), make([]byte, 88), RowMajor); err == nil {
			return fmt.Errorf("out-of-bounds accepted")
		}
		if err := f.ReadSection(NewBox([]int{0, 0}, []int{2, 2}), make([]byte, 8), RowMajor); err == nil {
			return fmt.Errorf("short buffer accepted")
		}
		if err := f.WriteSectionFloat64s(NewBox([]int{0, 0}, []int{2, 2}), []float64{1}, RowMajor); err == nil {
			return fmt.Errorf("short values accepted")
		}
		if err := f.Extend(0, 0); err == nil {
			return fmt.Errorf("zero extend accepted")
		}
		if err := f.Extend(5, 1); err == nil {
			return fmt.Errorf("bad dim accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- DistArray ---

func TestDistributeAndRMA(t *testing.T) {
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "ga", defaultOpts())
		if err != nil {
			return err
		}
		defer f.Close()
		if c.Rank() == 0 {
			vals := make([]float64, 100)
			for i := range vals {
				vals[i] = float64(i)
			}
			if err := f.WriteSectionFloat64s(NewBox([]int{0, 0}, []int{10, 10}), vals, RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		da, err := f.Distribute(RowMajor)
		if err != nil {
			return err
		}
		defer da.Free()
		// Every rank reads every element (mostly remote).
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				got, err := da.Get([]int{i, j})
				if err != nil {
					return err
				}
				if got != float64(10*i+j) {
					return fmt.Errorf("rank %d Get(%d,%d) = %v", c.Rank(), i, j, got)
				}
			}
		}
		if err := da.Fence(); err != nil {
			return err
		}
		// Rank 3 updates a remote element; after a fence everyone sees it.
		if c.Rank() == 3 {
			if err := da.Set([]int{0, 0}, -5); err != nil {
				return err
			}
		}
		if err := da.Fence(); err != nil {
			return err
		}
		if got, _ := da.Get([]int{0, 0}); got != -5 {
			return fmt.Errorf("rank %d sees (0,0) = %v after remote Set", c.Rank(), got)
		}
		// Concurrent accumulate onto one element.
		if err := da.Acc([]int{9, 9}, 1); err != nil {
			return err
		}
		if err := da.Fence(); err != nil {
			return err
		}
		if got, _ := da.Get([]int{9, 9}); got != float64(99+4) {
			return fmt.Errorf("acc result = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistArrayGetSection(t *testing.T) {
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "gs", defaultOpts())
		if err != nil {
			return err
		}
		defer f.Close()
		if c.Rank() == 0 {
			vals := make([]float64, 100)
			for i := range vals {
				vals[i] = float64(i) * 2
			}
			if err := f.WriteSectionFloat64s(NewBox([]int{0, 0}, []int{10, 10}), vals, RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		da, err := f.Distribute(RowMajor)
		if err != nil {
			return err
		}
		defer da.Free()
		// A section spanning all four zones.
		box := NewBox([]int{2, 3}, []int{8, 9})
		buf := make([]byte, box.Volume()*8)
		if err := da.GetSection(box, buf); err != nil {
			return err
		}
		sh := box.Shape()
		var bad error
		box.Iterate(grid.RowMajor, func(idx []int) bool {
			off := grid.Offset(sh, []int{idx[0] - 2, idx[1] - 3}, RowMajor)
			want := float64(10*idx[0]+idx[1]) * 2
			if got := f64(buf[off*8:]); got != want {
				bad = fmt.Errorf("rank %d section (%d,%d) = %v, want %v", c.Rank(), idx[0], idx[1], got, want)
				return false
			}
			return true
		})
		return bad
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistArrayFlushToFile(t *testing.T) {
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "fl", defaultOpts())
		if err != nil {
			return err
		}
		defer f.Close()
		da, err := f.Distribute(RowMajor)
		if err != nil {
			return err
		}
		defer da.Free()
		// Every rank fills its local zone with its rank id.
		box := da.LocalBox()
		data := da.LocalData()
		for i := 0; i < len(data)/8; i++ {
			putF64bits(data[i*8:], float64(c.Rank()+1))
		}
		if err := da.FlushToFile(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Verify from the file: each element equals its owner's id+1.
		if c.Rank() == 0 {
			full := NewBox([]int{0, 0}, []int{10, 10})
			got, err := f.ReadSectionFloat64s(full, RowMajor)
			if err != nil {
				return err
			}
			at := 0
			var bad error
			full.Iterate(grid.RowMajor, func(idx []int) bool {
				owner, err := f.OwnerOf(idx)
				if err != nil {
					bad = err
					return false
				}
				if got[at] != float64(owner+1) {
					bad = fmt.Errorf("(%v) = %v, owner %d", idx, got[at], owner)
					return false
				}
				at++
				return true
			})
			return bad
		}
		_ = box
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistArrayPutSection(t *testing.T) {
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "ps", defaultOpts())
		if err != nil {
			return err
		}
		defer f.Close()
		da, err := f.Distribute(RowMajor)
		if err != nil {
			return err
		}
		defer da.Free()
		// Rank 1 scatters a cross-zone section; everyone else idles.
		box := NewBox([]int{3, 2}, []int{8, 9})
		if c.Rank() == 1 {
			vals := make([]float64, box.Volume())
			at := 0
			box.Iterate(grid.RowMajor, func(idx []int) bool {
				vals[at] = float64(77000 + 10*idx[0] + idx[1])
				at++
				return true
			})
			if err := da.PutSection(box, encodeF64(vals)); err != nil {
				return err
			}
		}
		if err := da.Fence(); err != nil {
			return err
		}
		// Everyone verifies via Get.
		var bad error
		box.Iterate(grid.RowMajor, func(idx []int) bool {
			got, err := da.Get(idx)
			if err != nil {
				bad = err
				return false
			}
			if got != float64(77000+10*idx[0]+idx[1]) {
				bad = fmt.Errorf("rank %d: (%v) = %v", c.Rank(), idx, got)
				return false
			}
			return true
		})
		return bad
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickParallelRoundTrip drives random shapes/zones/orders through
// collective write + independent read.
func TestQuickParallelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		ranks := 1 + rng.Intn(5)
		cs := []int{1 + rng.Intn(3), 1 + rng.Intn(4)}
		nb := []int{4 + rng.Intn(10), 4 + rng.Intn(10)}
		order := Order(rng.Intn(2))
		err := cluster.Run(ranks, func(c *cluster.Comm) error {
			f, err := Create(c, "q", Options{DType: Float64, ChunkShape: cs, Bounds: nb, Order: order})
			if err != nil {
				return err
			}
			defer f.Close()
			my, err := f.MyZone()
			if err != nil {
				return err
			}
			var box Box
			if len(my) > 0 {
				box = my[0]
			} else {
				box = Box{Lo: []int{0, 0}, Hi: []int{0, 0}}
			}
			vals := make([]float64, box.Volume())
			at := 0
			box.Iterate(grid.RowMajor, func(idx []int) bool {
				vals[at] = float64(10000*idx[0] + idx[1])
				at++
				return true
			})
			// The memory order must be rank-stable (the shared rng is not
			// safe inside rank goroutines), so fix it per trial.
			ro := RowMajor
			if err := f.WriteSectionAll(box, encodeF64(vals), ro); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				full := NewBox([]int{0, 0}, nb)
				got, err := f.ReadSectionFloat64s(full, RowMajor)
				if err != nil {
					return err
				}
				at := 0
				var bad error
				full.Iterate(grid.RowMajor, func(idx []int) bool {
					if got[at] != float64(10000*idx[0]+idx[1]) {
						bad = fmt.Errorf("trial %d: (%v) = %v", trial, idx, got[at])
						return false
					}
					at++
					return true
				})
				return bad
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
