package drxmp_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
	"drxmp/internal/serve"
)

// Differential suite for the serving tier: sections fetched or stored
// through the HTTP front end must be byte-identical to direct drxmp
// access, and a burst of overlapping cold readers must reach the
// backing store measurably fewer times than the client count
// (single-flight + coalescing).

// serveCase is one array shape under test.
type serveCase struct {
	name   string
	chunk  []int
	bounds []int
}

func serveCases() []serveCase {
	return []serveCase{
		{name: "2d", chunk: []int{16, 8}, bounds: []int{48, 40}},
		{name: "3d", chunk: []int{8, 6, 10}, bounds: []int{24, 18, 20}},
	}
}

// serveBoxes is a coverage set of request boxes for the given bounds:
// full array, chunk-aligned, chunk-straddling with odd offsets, single
// inner row, and a 1-element corner.
func serveBoxes(bounds []int) []drxmp.Box {
	k := len(bounds)
	zero := make([]int, k)
	full := drxmp.NewBox(zero, bounds)
	mk := func(f func(i int) (int, int)) drxmp.Box {
		lo := make([]int, k)
		hi := make([]int, k)
		for i := range bounds {
			lo[i], hi[i] = f(i)
		}
		return drxmp.NewBox(lo, hi)
	}
	return []drxmp.Box{
		full,
		mk(func(i int) (int, int) { return 0, bounds[i] / 2 }),
		mk(func(i int) (int, int) { return 3, bounds[i] - 1 }),
		mk(func(i int) (int, int) { return bounds[i]/2 - 1, bounds[i]/2 + 1 }),
		mk(func(i int) (int, int) {
			if i == k-1 {
				return 0, bounds[i]
			}
			return 5, 6
		}),
		mk(func(i int) (int, int) { return bounds[i] - 1, bounds[i] }),
	}
}

func serveURL(base, name string, box drxmp.Box, order string) string {
	lo, hi := "", ""
	for i := range box.Lo {
		if i > 0 {
			lo += ","
			hi += ","
		}
		lo += fmt.Sprint(box.Lo[i])
		hi += fmt.Sprint(box.Hi[i])
	}
	u := fmt.Sprintf("%s/v1/arrays/%s/section?lo=%s&hi=%s", base, name, lo, hi)
	if order != "" {
		u += "&order=" + order
	}
	return u
}

func serveGet(url string) ([]byte, *http.Response, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, resp, err
	}
	if resp.StatusCode != http.StatusOK {
		return body, resp, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body, resp, nil
}

func servePut(url string, payload []byte) error {
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("PUT %s: status %d: %s", url, resp.StatusCode, body)
	}
	return nil
}

// serveCreate creates a seeded array on its own store.
func serveCreate(c *cluster.Comm, name string, sc serveCase, tuning drxmp.Tuning) (*drxmp.File, error) {
	f, err := drxmp.Create(c, name, drxmp.Options{
		DType: drxmp.Float64, ChunkShape: sc.chunk, Bounds: sc.bounds,
		FS:     pfs.Options{Servers: 4, StripeSize: 1 << 10, Scheduler: pfs.Elevator},
		Tuning: tuning,
	})
	if err != nil {
		return nil, err
	}
	full := drxmp.NewBox(make([]int, len(sc.bounds)), sc.bounds)
	vals := make([]float64, full.Volume())
	for i := range vals {
		vals[i] = float64(i)*0.5 - 3
	}
	if err := f.WriteSectionFloat64s(full, vals, drxmp.RowMajor); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// TestServeDifferentialSections pins that server-mediated reads and
// writes are byte-identical to direct access across 2D and 3D arrays,
// both element orders, and chunk-straddling boxes.
func TestServeDifferentialSections(t *testing.T) {
	for _, sc := range serveCases() {
		t.Run(sc.name, func(t *testing.T) {
			err := cluster.Run(1, func(c *cluster.Comm) error {
				f, err := serveCreate(c, "diff-"+sc.name, sc, drxmp.Tuning{})
				if err != nil {
					return err
				}
				defer f.Close()
				// ref receives the same writes directly; it is the
				// served array's shadow.
				ref, err := serveCreate(c, "ref-"+sc.name, sc, drxmp.Tuning{})
				if err != nil {
					return err
				}
				defer ref.Close()

				srv := serve.New(serve.Config{CoalesceWindow: time.Millisecond})
				if err := srv.Register("arr", f); err != nil {
					return err
				}
				ts := httptest.NewServer(srv.Handler())
				defer ts.Close()

				es := int64(8)
				for bi, box := range serveBoxes(sc.bounds) {
					for _, ord := range []struct {
						q string
						o drxmp.Order
					}{{"", drxmp.RowMajor}, {"F", drxmp.ColMajor}} {
						want := make([]byte, box.Volume()*es)
						if err := f.ReadSection(box, want, ord.o); err != nil {
							return err
						}
						got, _, err := serveGet(serveURL(ts.URL, "arr", box, ord.q))
						if err != nil {
							return err
						}
						if !bytes.Equal(got, want) {
							return fmt.Errorf("box %d %v order %q: served read differs from direct", bi, box, ord.q)
						}
					}
				}

				// Writes: push distinct payloads through the server,
				// mirror them directly into ref, then require the full
				// arrays byte-identical via direct AND served reads.
				for bi, box := range serveBoxes(sc.bounds) {
					payload := make([]byte, box.Volume()*es)
					for i := range payload {
						payload[i] = byte(i*7 + bi*131)
					}
					ord := drxmp.RowMajor
					q := ""
					if bi%2 == 1 {
						ord = drxmp.ColMajor
						q = "F"
					}
					if err := servePut(serveURL(ts.URL, "arr", box, q), payload); err != nil {
						return err
					}
					if err := ref.WriteSection(box, payload, ord); err != nil {
						return err
					}
				}
				full := drxmp.NewBox(make([]int, len(sc.bounds)), sc.bounds)
				want := make([]byte, full.Volume()*es)
				if err := ref.ReadSection(full, want, drxmp.RowMajor); err != nil {
					return err
				}
				direct := make([]byte, full.Volume()*es)
				if err := f.ReadSection(full, direct, drxmp.RowMajor); err != nil {
					return err
				}
				if !bytes.Equal(direct, want) {
					return fmt.Errorf("served writes diverge from direct writes (direct read)")
				}
				served, _, err := serveGet(serveURL(ts.URL, "arr", full, ""))
				if err != nil {
					return err
				}
				if !bytes.Equal(served, want) {
					return fmt.Errorf("served writes diverge from direct writes (served read)")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServeConcurrentColdClients is the acceptance e2e: 32 concurrent
// clients issue overlapping cold section reads; every response must be
// byte-identical to direct access, and the backing store must see
// measurably fewer section reads than the client count — the
// coalescing and single-flight counters prove where they went.
func TestServeConcurrentColdClients(t *testing.T) {
	const clients = 32
	sc := serveCase{name: "cold", chunk: []int{16, 16}, bounds: []int{96, 96}}
	err := cluster.Run(1, func(c *cluster.Comm) error {
		// Two identical stores: one served, one as the direct baseline
		// (both caches off, so every read is cold at the store).
		f, err := serveCreate(c, "cold-served", sc, drxmp.Tuning{})
		if err != nil {
			return err
		}
		defer f.Close()
		base, err := serveCreate(c, "cold-direct", sc, drxmp.Tuning{})
		if err != nil {
			return err
		}
		defer base.Close()

		srv := serve.New(serve.Config{
			CoalesceWindow:      150 * time.Millisecond,
			MaxInFlightRequests: clients, // bound present, never the bottleneck here
		})
		if err := srv.Register("cold", f); err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		// Overlapping request pattern: 8 distinct boxes sliding along a
		// diagonal (several share a chunk-aligned cover -> single-flight;
		// distinct covers overlap -> coalescing), 4 clients per box.
		boxOf := func(i int) drxmp.Box {
			s := 4 * (i % 8)
			return drxmp.NewBox([]int{s, 8}, []int{s + 40, 72})
		}

		f.FS().ResetStats()
		base.FS().ResetStats()

		start := make(chan struct{})
		errs := make([]error, clients)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				got, _, err := serveGet(serveURL(ts.URL, "cold", boxOf(i), ""))
				if err != nil {
					errs[i] = err
					return
				}
				want := make([]byte, boxOf(i).Volume()*8)
				if err := base.ReadSection(boxOf(i), want, drxmp.RowMajor); err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(got, want) {
					errs[i] = fmt.Errorf("client %d: served bytes differ from direct", i)
				}
			}(i)
		}
		close(start)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}

		st := srv.Stats()
		a := st.Arrays[0]
		var servedReads, directReads int64
		for _, ps := range f.FS().Stats().PerServer {
			servedReads += ps.Reads
		}
		for _, ps := range base.FS().Stats().PerServer {
			directReads += ps.Reads
		}
		t.Logf("serving tier: %d clients -> %d backing section reads (%d single-flight hits, %d coalesced); pfs reads served=%d direct=%d",
			clients, a.Coalesce.BackingReads, a.SingleFlight.Hits, a.Coalesce.Merged, servedReads, directReads)
		if a.Coalesce.BackingReads >= clients {
			return fmt.Errorf("%d backing section reads for %d clients: no sharing happened", a.Coalesce.BackingReads, clients)
		}
		if a.SingleFlight.Hits+a.Coalesce.Merged == 0 {
			return fmt.Errorf("neither single-flight nor coalescing absorbed any request")
		}
		if a.SingleFlight.Hits+a.Coalesce.Merged+a.Coalesce.BackingReads < clients {
			return fmt.Errorf("counters do not account for the client burst: hits=%d merged=%d backing=%d",
				a.SingleFlight.Hits, a.Coalesce.Merged, a.Coalesce.BackingReads)
		}
		if servedReads >= directReads {
			return fmt.Errorf("store saw %d reads through the server vs %d direct: serving tier amplified I/O", servedReads, directReads)
		}
		// Every request went through admission; none should still be
		// holding budget.
		if a.Admission.InFlight != 0 || a.Admission.Admitted != clients {
			return fmt.Errorf("admission accounting off: %+v", a.Admission)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServeTenantAttribution pins that concurrent tenants see their
// own request counters.
func TestServeTenantAttribution(t *testing.T) {
	sc := serveCase{name: "tenants", chunk: []int{8, 8}, bounds: []int{32, 32}}
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := serveCreate(c, "tenants", sc, drxmp.Tuning{})
		if err != nil {
			return err
		}
		defer f.Close()
		srv := serve.New(serve.Config{})
		if err := srv.Register("arr", f); err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		box := drxmp.NewBox([]int{0, 0}, []int{8, 8})
		for _, tenant := range []string{"alice", "bob", "bob"} {
			req, _ := http.NewRequest(http.MethodGet, serveURL(ts.URL, "arr", box, ""), nil)
			req.Header.Set("X-Drx-Tenant", tenant)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		tn := srv.Stats().Tenants
		if tn["alice"].Reads != 1 || tn["bob"].Reads != 2 {
			return fmt.Errorf("tenant attribution off: alice=%+v bob=%+v", tn["alice"], tn["bob"])
		}
		if tn["alice"].BytesOut != 8*8*8 {
			return fmt.Errorf("alice bytes_out = %d", tn["alice"].BytesOut)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
