package drxmp

import (
	"testing"

	"drxmp/internal/cluster"
)

// TestSyncWorkersResolution pins the DistArray section-sync worker
// bound: GetSection/PutSection take the larger of the independent and
// collective parallelism budgets, so a serial independent knob no
// longer caps one-sided section transfers when the collective budget
// is wider.
func TestSyncWorkersResolution(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := Create(c, "syncw", Options{
			DType: Float64, ChunkShape: []int{4, 4}, Bounds: []int{8, 8},
			Tuning: Tuning{Parallelism: -1, CollectiveParallelism: 6},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		if got := f.syncWorkers(); got != 6 {
			t.Errorf("syncWorkers() = %d, want 6 (collective budget wins)", got)
		}
		f.SetCollectiveParallelism(-1)
		if got := f.syncWorkers(); got != 1 {
			t.Errorf("syncWorkers() with both serial = %d, want 1", got)
		}
		f.SetParallelism(4)
		if got := f.syncWorkers(); got != 4 {
			t.Errorf("syncWorkers() = %d, want 4 (independent budget wins)", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
