package drxmp

import (
	"sync"
	"sync/atomic"

	"drxmp/internal/par"
	"drxmp/internal/pfs"
)

// This file is the parallel half of the independent section-I/O path:
// the sorted ioRun list is packed into contiguous "run groups" (the
// same lossless coalescing the serial path performs, capped so one
// group is roughly one chunk or one stripe unit) and the groups are
// dispatched across a bounded worker pool. Reads are pipelined —
// worker goroutines keep the next groups' extents in flight while the
// caller scatters the groups that have already landed (read-ahead) —
// and writes gather+write per group concurrently. Group scratch
// regions and user-buffer element runs are disjoint across groups, so
// workers never share mutable bytes.

// runGroup is one contiguous file extent covering a consecutive slice
// of the sorted run list, plus its region of the packed scratch buffer.
type runGroup struct {
	fileOff int64 // first byte of the extent
	bytes   int64 // extent length (== summed run bytes; runs are contiguous)
	at      int64 // scratch offset of the group's first run
	runs    []ioRun
}

// runGroups packs sorted runs into contiguous groups of at most
// groupMax bytes (always at least one run per group). Runs are merged
// into a group only when byte-adjacent in the file, exactly like the
// serial path's coalescing, so the request pattern the servers see is
// the serial pattern split at chunk/stripe-sized boundaries.
func runGroups(runs []ioRun, es, groupMax int64) []runGroup {
	var groups []runGroup
	var at int64
	for i, r := range runs {
		l := r.elems * es
		if n := len(groups); n > 0 {
			g := &groups[n-1]
			if g.fileOff+g.bytes == r.fileOff && g.bytes+l <= groupMax {
				g.bytes += l
				g.runs = runs[i-len(g.runs) : i+1]
				at += l
				continue
			}
		}
		groups = append(groups, runGroup{fileOff: r.fileOff, bytes: l, at: at, runs: runs[i : i+1]})
		at += l
	}
	return groups
}

// groupMaxBytes picks the group granularity: one chunk, or one stripe
// unit if chunks are smaller — small enough to spread a large transfer
// across all servers, large enough not to inflate the request count.
func (f *File) groupMaxBytes() int64 {
	m := f.m.ChunkBytes()
	if s := f.fs.StripeSize(); s > m {
		m = s
	}
	return m
}

// sectionIOParallel performs an independent section read or write by
// dispatching run groups across `workers` goroutines.
func (f *File) sectionIOParallel(runs []ioRun, scratch, user []byte, write bool, workers int) error {
	es := int64(f.m.DType.Size())
	groups := runGroups(runs, es, f.groupMaxBytes())
	if write {
		// Gather + write per group; groups proceed concurrently.
		return par.Do(workers, len(groups), func(i int) error {
			g := &groups[i]
			f.scatterGather(g.runs, scratch[g.at:g.at+g.bytes], user, false)
			_, err := f.fs.WriteAt(scratch[g.at:g.at+g.bytes], g.fileOff)
			return err
		})
	}
	return f.readGroupsAhead(groups, scratch, user, workers)
}

// readGroup fetches one group's extent into its scratch region: with
// read caching on it goes through the unified cache (covered stripes
// from memory, holes sieve-fetched — the cache is safe for concurrent
// workers), otherwise straight from the store.
func (f *File) readGroup(g *runGroup, scratch []byte) error {
	if f.cacheActive() {
		return f.io.ReadV([]pfs.Run{{Off: g.fileOff, Len: g.bytes}}, scratch)
	}
	_, err := f.fs.ReadAt(scratch, g.fileOff)
	return err
}

// readGroupsAhead reads run groups with explicit read-ahead: up to
// `workers` extents are in flight while the calling goroutine scatters
// every group that has already landed, so the next groups' pages are
// being fetched while the current group scatters.
func (f *File) readGroupsAhead(groups []runGroup, scratch, user []byte, workers int) error {
	if workers > len(groups) {
		workers = len(groups)
	}
	idx := make(chan int, len(groups))
	for i := range groups {
		idx <- i
	}
	close(idx)
	type result struct {
		i   int
		err error
	}
	done := make(chan result)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					return // stop dispatching reads after the first error
				}
				g := &groups[i]
				err := f.readGroup(g, scratch[g.at:g.at+g.bytes])
				if err != nil {
					failed.Store(true)
				}
				done <- result{i, err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	var firstErr error
	for r := range done {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if firstErr != nil {
			continue // drain; skip scatter after failure
		}
		g := &groups[r.i]
		f.scatterGather(g.runs, scratch[g.at:g.at+g.bytes], user, true)
	}
	return firstErr
}
