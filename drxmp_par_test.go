package drxmp_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

// TestParallelSerialSectionsIdentical writes a principal array through
// the parallel independent-I/O path and a twin through the serial path,
// then cross-reads both with every order/parallelism combination: all
// byte buffers must be identical. This pins the tentpole invariant —
// parallel dispatch of the run groups is invisible to the data.
func TestParallelSerialSectionsIdentical(t *testing.T) {
	const n = 97 // deliberately not a multiple of the chunk shape
	chunk := []int{16, 8}
	rng := rand.New(rand.NewSource(42))
	vals := make([]byte, n*n*8)
	rng.Read(vals)

	err := cluster.Run(1, func(c *cluster.Comm) error {
		mk := func(name string, parallelism int) (*drxmp.File, error) {
			return drxmp.Create(c, name, drxmp.Options{
				DType: drxmp.Float64, ChunkShape: chunk, Bounds: []int{n, n},
				FS:     pfs.Options{Servers: 4, StripeSize: 4 << 10},
				Tuning: drxmp.Tuning{Parallelism: parallelism},
			})
		}
		ser, err := mk("par-ser", -1)
		if err != nil {
			return err
		}
		defer ser.Close()
		parf, err := mk("par-par", 8)
		if err != nil {
			return err
		}
		defer parf.Close()

		full := drxmp.NewBox([]int{0, 0}, []int{n, n})
		if err := ser.WriteSection(full, vals, drxmp.RowMajor); err != nil {
			return err
		}
		if err := parf.WriteSection(full, vals, drxmp.RowMajor); err != nil {
			return err
		}

		for trial := 0; trial < 40; trial++ {
			lo := []int{rng.Intn(n), rng.Intn(n)}
			hi := []int{lo[0] + 1 + rng.Intn(n-lo[0]), lo[1] + 1 + rng.Intn(n-lo[1])}
			box := drxmp.NewBox(lo, hi)
			order := drxmp.RowMajor
			if trial%2 == 1 {
				order = drxmp.ColMajor
			}
			want := make([]byte, box.Volume()*8)
			if err := ser.ReadSection(box, want, order); err != nil {
				return err
			}
			got := make([]byte, box.Volume()*8)
			if err := parf.ReadSection(box, got, order); err != nil {
				return err
			}
			if !bytes.Equal(want, got) {
				return fmt.Errorf("trial %d: parallel read of %v (order %v) differs from serial", trial, box, order)
			}
		}

		// The files themselves must hold identical bytes: re-read the
		// parallel-written file through the serial path.
		parf.SetParallelism(-1)
		got := make([]byte, n*n*8)
		if err := parf.ReadSection(full, got, drxmp.RowMajor); err != nil {
			return err
		}
		want := make([]byte, n*n*8)
		if err := ser.ReadSection(full, want, drxmp.RowMajor); err != nil {
			return err
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("parallel-written file differs from serial-written file")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParallelPartialChunkWrites drives the parallel write path over
// boxes that cover chunks only partially (per-run writes, no
// whole-chunk fast path) and verifies against a shadow buffer.
func TestParallelPartialChunkWrites(t *testing.T) {
	const n = 64
	chunk := []int{16, 16}
	rng := rand.New(rand.NewSource(7))
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "par-partial", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: chunk, Bounds: []int{n, n},
			FS:     pfs.Options{Servers: 4, StripeSize: 2 << 10},
			Tuning: drxmp.Tuning{Parallelism: 6},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		shadow := make([]byte, n*n*8)
		for trial := 0; trial < 30; trial++ {
			lo := []int{rng.Intn(n), rng.Intn(n)}
			hi := []int{lo[0] + 1 + rng.Intn(n-lo[0]), lo[1] + 1 + rng.Intn(n-lo[1])}
			box := drxmp.NewBox(lo, hi)
			data := make([]byte, box.Volume()*8)
			rng.Read(data)
			if err := f.WriteSection(box, data, drxmp.RowMajor); err != nil {
				return err
			}
			// Mirror into the row-major shadow.
			w := hi[1] - lo[1]
			for i := lo[0]; i < hi[0]; i++ {
				srcOff := (i - lo[0]) * w * 8
				dstOff := (i*n + lo[1]) * 8
				copy(shadow[dstOff:dstOff+w*8], data[srcOff:srcOff+w*8])
			}
		}
		full := drxmp.NewBox([]int{0, 0}, []int{n, n})
		got := make([]byte, n*n*8)
		if err := f.ReadSection(full, got, drxmp.RowMajor); err != nil {
			return err
		}
		if !bytes.Equal(shadow, got) {
			return fmt.Errorf("parallel partial writes diverged from shadow")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
