package drxmp

import (
	"fmt"
	"testing"

	"drxmp/internal/cluster"
	"drxmp/internal/grid"
	"drxmp/internal/workload"
	"drxmp/internal/zone"
)

// TestThreeDimensionalParallel runs the full parallel life cycle on a
// rank-3 array: collective create, zone writes, growth along every
// dimension (interleaved to force new axial records), transposed reads.
func TestThreeDimensionalParallel(t *testing.T) {
	const ranks = 8
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		f, err := Create(c, "cube", Options{
			DType:      Float64,
			ChunkShape: []int{4, 4, 4},
			Bounds:     []int{8, 8, 8},
		})
		if err != nil {
			return err
		}
		defer f.Close()

		write := func() error {
			my, err := f.MyZone()
			if err != nil {
				return err
			}
			var box Box
			if len(my) > 0 {
				box = my[0]
			} else {
				box = Box{Lo: []int{0, 0, 0}, Hi: []int{0, 0, 0}}
			}
			vals := workload.FillBox(box, grid.RowMajor)
			return f.WriteSectionAll(box, encodeF64(vals), RowMajor)
		}
		if err := write(); err != nil {
			return err
		}
		// Grow each dimension once, rewriting zones after each step
		// (zones re-derive from the replicated metadata).
		for dim := 0; dim < 3; dim++ {
			if err := f.Extend(dim, 4); err != nil {
				return err
			}
			if err := write(); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			b := f.Bounds()
			if b[0] != 12 || b[1] != 12 || b[2] != 12 {
				return fmt.Errorf("bounds = %v", b)
			}
			// Every element must verify in both read orders.
			full := NewBox([]int{0, 0, 0}, b)
			for _, order := range []Order{RowMajor, ColMajor} {
				buf := make([]byte, full.Volume()*8)
				if err := f.ReadSection(full, buf, order); err != nil {
					return err
				}
				vals := decodeF64(buf)
				if bad := workload.Verify(full, vals, order); bad != nil {
					return fmt.Errorf("order %v: mismatch at %v", order, bad)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func decodeF64(buf []byte) []float64 {
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = f64(buf[i*8:])
	}
	return out
}

// TestBlockCyclicParallelIO verifies collective I/O over the
// BLOCK_CYCLIC decomposition (many boxes per rank, heavily interleaved
// file accesses).
func TestBlockCyclicParallelIO(t *testing.T) {
	const ranks = 4
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		f, err := Create(c, "cyc", Options{
			DType:       Float64,
			ChunkShape:  []int{2, 2},
			Bounds:      []int{16, 16},
			Decomp:      zone.BlockCyclic,
			CyclicBlock: 1,
		})
		if err != nil {
			return err
		}
		defer f.Close()
		my, err := f.MyZone()
		if err != nil {
			return err
		}
		if len(my) < 2 {
			return fmt.Errorf("rank %d: cyclic zone has %d boxes, expected several", c.Rank(), len(my))
		}
		// Matched collective calls across ranks: all ranks have the same
		// box count for this geometry (16/2=8 chunks per dim, 4 ranks in
		// a 2x2 grid, cyclic blocks of 1 -> 4x4 = 16 boxes each).
		for _, b := range my {
			vals := workload.FillBox(b, grid.RowMajor)
			if err := f.WriteSectionAll(b, encodeF64(vals), RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			full := NewBox([]int{0, 0}, []int{16, 16})
			got, err := f.ReadSectionFloat64s(full, RowMajor)
			if err != nil {
				return err
			}
			if bad := workload.Verify(full, got, grid.RowMajor); bad != nil {
				return fmt.Errorf("mismatch at %v", bad)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistributeRequiresBlock confirms the documented restriction.
func TestDistributeRequiresBlock(t *testing.T) {
	err := cluster.Run(2, func(c *cluster.Comm) error {
		f, err := Create(c, "nb", Options{
			DType: Float64, ChunkShape: []int{2, 2}, Bounds: []int{8, 8},
			Decomp: zone.BlockCyclic, CyclicBlock: 1,
		})
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.Distribute(RowMajor); err == nil {
			return fmt.Errorf("Distribute accepted a cyclic decomposition")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUnevenRanks exercises zones when the chunk grid does not divide
// evenly by the process grid (empty zones included).
func TestUnevenRanks(t *testing.T) {
	for _, ranks := range []int{3, 5, 7} {
		t.Run(fmt.Sprintf("P%d", ranks), func(t *testing.T) {
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				f, err := Create(c, "uneven", Options{
					DType: Float64, ChunkShape: []int{3, 3}, Bounds: []int{7, 5},
				})
				if err != nil {
					return err
				}
				defer f.Close()
				my, err := f.MyZone()
				if err != nil {
					return err
				}
				var box Box
				if len(my) > 0 {
					box = my[0]
				} else {
					box = Box{Lo: []int{0, 0}, Hi: []int{0, 0}}
				}
				vals := workload.FillBox(box, grid.RowMajor)
				if err := f.WriteSectionAll(box, encodeF64(vals), RowMajor); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					full := NewBox([]int{0, 0}, []int{7, 5})
					got, err := f.ReadSectionFloat64s(full, RowMajor)
					if err != nil {
						return err
					}
					if bad := workload.Verify(full, got, grid.RowMajor); bad != nil {
						return fmt.Errorf("mismatch at %v", bad)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInterleavedGrowthRecordCount checks that the replicated metadata
// accumulates axial records identically on every rank under interleaved
// growth.
func TestInterleavedGrowthRecordCount(t *testing.T) {
	counts := make([]int, 4)
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "gr", Options{
			DType: Float64, ChunkShape: []int{2, 2}, Bounds: []int{4, 4},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		for i := 0; i < 6; i++ {
			if err := f.Extend(i%2, 2); err != nil {
				return err
			}
		}
		counts[c.Rank()] = f.Meta().Space.NumRecords()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if counts[r] != counts[0] {
			t.Fatalf("rank %d has %d records, rank 0 has %d", r, counts[r], counts[0])
		}
	}
	// 6 interleaved extensions: the first dim-0 one merges with the
	// initial allocation; sentinel on dim 1 + root on dim 0 + 5 records.
	if counts[0] != 2+5 {
		t.Fatalf("records = %d, want 7", counts[0])
	}
}
