package drxmp

import (
	"errors"
	"fmt"

	"drxmp/internal/dtype"
	"drxmp/internal/grid"
	"drxmp/internal/par"
	"drxmp/internal/rma"
	"drxmp/internal/zone"
)

// DistArray is the Global-Array-style processing model of the paper's
// Section II: after the principal array is read and distributed, each
// process holds its zone as a dense in-memory sub-array (in C or
// Fortran order, chosen at distribution time), and any process can
// access any element — local elements directly, remote elements through
// one-sided RMA — "as if each process has access to the entire
// principal array".
//
// DistArray requires the BLOCK decomposition (one box per process),
// matching the paper's Fig. 1 distribution.
type DistArray struct {
	f     *File
	order Order
	local []byte
	box   Box   // my zone in element coordinates
	boxes []Box // every rank's zone (replicated, computed from metadata)
	win   *rma.Win
}

// Distribute collectively reads the principal array into zone-sized
// memory arrays (one per process, BLOCK decomposition) and exposes them
// through an RMA window. Must be called by every process.
func (f *File) Distribute(order Order) (*DistArray, error) {
	if f.kind != zone.Block {
		return nil, errors.New("drxmp: Distribute requires the BLOCK decomposition")
	}
	if order != RowMajor && order != ColMajor {
		return nil, fmt.Errorf("drxmp: invalid order %v", order)
	}
	boxes := make([]Box, f.comm.Size())
	for r := range boxes {
		zb, err := f.ZoneBoxes(r)
		if err != nil {
			return nil, err
		}
		switch len(zb) {
		case 0:
			boxes[r] = Box{Lo: make([]int, f.Rank()), Hi: make([]int, f.Rank())}
		case 1:
			boxes[r] = zb[0]
		default:
			return nil, errors.New("drxmp: BLOCK zone is not a single box")
		}
	}
	my := boxes[f.comm.Rank()]
	buf := make([]byte, my.Volume()*int64(f.m.DType.Size()))
	if err := f.ReadSectionAll(my, buf, order); err != nil {
		return nil, err
	}
	win, err := rma.Create(f.comm, buf)
	if err != nil {
		return nil, err
	}
	return &DistArray{f: f, order: order, local: buf, box: my, boxes: boxes, win: win}, nil
}

// LocalBox returns this process's zone in element coordinates.
func (d *DistArray) LocalBox() Box { return d.box.Clone() }

// LocalData returns this process's zone buffer (dense over LocalBox in
// the distribution order). Mutations are visible to remote Get.
func (d *DistArray) LocalData() []byte { return d.local }

// Order returns the in-memory layout order chosen at distribution.
func (d *DistArray) Order() Order { return d.order }

// Fence separates RMA access epochs (collective).
func (d *DistArray) Fence() error { return d.win.Fence() }

// Free collectively releases the RMA window.
func (d *DistArray) Free() error { return d.win.Free() }

// locate returns (owner rank, byte offset within the owner's buffer).
func (d *DistArray) locate(idx []int) (int, int64, error) {
	owner, err := d.f.OwnerOf(idx)
	if err != nil {
		return 0, 0, err
	}
	ob := d.boxes[owner]
	rel := make([]int, len(idx))
	for i := range idx {
		rel[i] = idx[i] - ob.Lo[i]
	}
	off := grid.Offset(ob.Shape(), rel, d.order) * int64(d.f.m.DType.Size())
	return owner, off, nil
}

// Get returns the element at global index idx, fetching remotely when
// the owner is another process (GA_Get / MPI_Get).
func (d *DistArray) Get(idx []int) (float64, error) {
	owner, off, err := d.locate(idx)
	if err != nil {
		return 0, err
	}
	es := d.f.m.DType.Size()
	if owner == d.f.comm.Rank() {
		return dtype.Float64At(d.f.m.DType, d.local[off:]), nil
	}
	buf := make([]byte, es)
	if err := d.win.Get(owner, off, buf); err != nil {
		return 0, err
	}
	return dtype.Float64At(d.f.m.DType, buf), nil
}

// Set stores v at global index idx (GA_Put / MPI_Put).
func (d *DistArray) Set(idx []int, v float64) error {
	owner, off, err := d.locate(idx)
	if err != nil {
		return err
	}
	es := d.f.m.DType.Size()
	buf := make([]byte, es)
	dtype.PutFloat64(d.f.m.DType, buf, v)
	return d.win.Put(owner, off, buf)
}

// Acc accumulates v into the element at idx (GA_Acc / MPI_Accumulate
// with MPI_SUM); atomic with respect to concurrent Acc calls.
func (d *DistArray) Acc(idx []int, v float64) error {
	owner, off, err := d.locate(idx)
	if err != nil {
		return err
	}
	buf := make([]byte, d.f.m.DType.Size())
	dtype.PutFloat64(d.f.m.DType, buf, v)
	return d.win.Accumulate(owner, off, buf, d.f.m.DType, rma.Sum)
}

// sectionOwners returns the ranks whose zones intersect box. The
// per-rank transfers touch disjoint regions of the user buffer, so
// they can proceed concurrently.
func (d *DistArray) sectionOwners(box Box) []int {
	var owners []int
	for r, ob := range d.boxes {
		if !ob.Intersect(box).Empty() {
			owners = append(owners, r)
		}
	}
	return owners
}

// GetSection copies an arbitrary global sub-array into dst (dense over
// box in the distribution order), pulling remote pieces one-sidedly.
// Transfers from different owner ranks proceed in parallel (bounded by
// the larger of the file's Parallelism and CollectiveParallelism
// knobs) — each remote Get only locks its target rank's window, so
// pulls from distinct owners overlap.
func (d *DistArray) GetSection(box Box, dst []byte) error {
	es := int64(d.f.m.DType.Size())
	if int64(len(dst)) < box.Volume()*es {
		return fmt.Errorf("drxmp: buffer of %d bytes for %d-byte section", len(dst), box.Volume()*es)
	}
	boxShape := box.Shape()
	dstStrides := grid.Strides(boxShape, d.order)
	owners := d.sectionOwners(box)
	// Per owning rank, copy the intersection row by row (rows in the
	// owner's layout order so each remote Get is one contiguous span).
	return par.Do(d.f.syncWorkers(), len(owners), func(oi int) error {
		r := owners[oi]
		ob := d.boxes[r]
		ibox := ob.Intersect(box)
		obShape := ob.Shape()
		ownStrides := grid.Strides(obShape, d.order)
		inner := 0
		if d.order == RowMajor {
			inner = d.f.Rank() - 1
		}
		var outerErr error
		ibox.Rows(d.order, func(start []int, n int) bool {
			var srcOff, dstOff int64
			for i := range start {
				srcOff += int64(start[i]-ob.Lo[i]) * ownStrides[i]
				dstOff += int64(start[i]-box.Lo[i]) * dstStrides[i]
			}
			srcB := srcOff * es
			row := make([]byte, int64(n)*es)
			if r == d.f.comm.Rank() {
				copy(row, d.local[srcB:srcB+int64(n)*es])
			} else if err := d.win.Get(r, srcB, row); err != nil {
				outerErr = err
				return false
			}
			// Place the row: contiguous in dst iff the inner dimension's
			// dst stride is 1, which holds because dst uses the same
			// order as the owner's layout.
			_ = inner
			copy(dst[dstOff*es:], row)
			return true
		})
		return outerErr
	})
}

// PutSection scatters src (dense over box in the distribution order)
// into the owning zones, pushing remote pieces one-sidedly (GA_Put over
// a region). Call Fence before dependent reads. Pushes to distinct
// owner ranks proceed in parallel, like GetSection.
func (d *DistArray) PutSection(box Box, src []byte) error {
	es := int64(d.f.m.DType.Size())
	if int64(len(src)) < box.Volume()*es {
		return fmt.Errorf("drxmp: buffer of %d bytes for %d-byte section", len(src), box.Volume()*es)
	}
	boxShape := box.Shape()
	srcStrides := grid.Strides(boxShape, d.order)
	owners := d.sectionOwners(box)
	return par.Do(d.f.syncWorkers(), len(owners), func(oi int) error {
		r := owners[oi]
		ob := d.boxes[r]
		ibox := ob.Intersect(box)
		obShape := ob.Shape()
		ownStrides := grid.Strides(obShape, d.order)
		var outerErr error
		ibox.Rows(d.order, func(start []int, n int) bool {
			var dstOff, srcOff int64
			for i := range start {
				dstOff += int64(start[i]-ob.Lo[i]) * ownStrides[i]
				srcOff += int64(start[i]-box.Lo[i]) * srcStrides[i]
			}
			row := src[srcOff*es : (srcOff+int64(n))*es]
			if r == d.f.comm.Rank() {
				copy(d.local[dstOff*es:], row)
				return true
			}
			if err := d.win.Put(r, dstOff*es, row); err != nil {
				outerErr = err
				return false
			}
			return true
		})
		return outerErr
	})
}

// Refresh collectively re-reads every zone from the principal array
// file into the local buffers — the inverse of FlushToFile, for
// workflows that alternate out-of-core passes with distributed ones.
// The collective read is coherent with the unified extent cache: with
// write-behind it observes every rank's deferred bytes, and with read
// caching (Options.CacheBytes) a re-read of a warm file comes from
// memory without touching the I/O servers. Must be called by every
// process, between RMA epochs (as with Distribute, no fence is held).
func (d *DistArray) Refresh() error {
	return d.f.ReadSectionAll(d.box, d.local, d.order)
}

// FlushToFile collectively writes every zone back to the principal
// array file. With write-behind enabled the zones ride the dirty-extent
// cache like any collective write: collective reads (and this rank's
// own reads) stay coherent, but the bytes reach the I/O servers only on
// the watermark, Sync, or Close — use Checkpoint when durability is the
// point.
func (d *DistArray) FlushToFile() error {
	return d.f.WriteSectionAll(d.box, d.local, d.order)
}

// Checkpoint collectively writes every zone back to the principal
// array file and Syncs, so the distributed state is durably on the I/O
// servers even when collective writes ride write-behind.
func (d *DistArray) Checkpoint() error {
	if err := d.FlushToFile(); err != nil {
		return err
	}
	return d.f.Sync()
}
