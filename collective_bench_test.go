package drxmp_test

import (
	"fmt"
	"testing"
	"time"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

// BenchmarkCollective measures the parallel two-phase collective
// against the serial one (the acceptance benchmark of the collective
// parallelization): 4 ranks collectively read/write slab sections of an
// f64 array over 16 real-time striped servers, with the aggregate phase
// running serial (CollectiveParallelism -1) or on 8 workers per rank.
// The servers sleep their charged service time inside their request
// queues, so the parallel/serial ns-per-op ratio is genuine wall-clock
// BenchmarkCollectiveScheduler measures the elevator queue discipline
// against FIFO (the acceptance benchmark of the scheduler tentpole): 4
// ranks collectively read/write interleaved slabs over 8 real-time
// servers whose cost model charges 2 ms per seek, with 32 aggregate
// workers per rank keeping every server's queue deep. Under FIFO the
// interleaved arrivals pay a seek on nearly every request; the
// elevator freezes its reorder window, sweeps it in ascending offset
// order, and merges physically adjacent segments, so most of the seek
// latency vanishes from the wall clock. Both run adaptive cb_nodes
// (the default), so the only variable is the service discipline.
func BenchmarkCollectiveScheduler(b *testing.B) {
	const (
		n       = 192
		chunk   = 32
		ranks   = 4
		servers = 8
	)
	stripe := int64(2 << 10)
	cost := pfs.CostModel{
		RequestOverhead: 100 * time.Microsecond,
		SeekLatency:     2 * time.Millisecond,
		ByteTime:        10 * time.Nanosecond,
		RealTime:        true,
	}
	slab := func(r int) drxmp.Box {
		q := (n + ranks - 1) / ranks
		hi := (r + 1) * q
		if hi > n {
			hi = n
		}
		return drxmp.NewBox([]int{r * q, 0}, []int{hi, n})
	}
	for _, write := range []bool{false, true} {
		op := "read"
		if write {
			op = "write"
		}
		for _, cfg := range []struct {
			name  string
			sched pfs.Scheduler
		}{{"fifo", pfs.FIFO}, {"elevator", pfs.Elevator}} {
			b.Run(op+"/"+cfg.name, func(b *testing.B) {
				b.SetBytes(int64(n) * n * 8)
				err := cluster.Run(ranks, func(c *cluster.Comm) error {
					f, err := drxmp.Create(c, fmt.Sprintf("bs-%s-%s", op, cfg.name), drxmp.Options{
						DType: drxmp.Float64, ChunkShape: []int{chunk, chunk}, Bounds: []int{n, n},
						FS: pfs.Options{
							Servers: servers, StripeSize: stripe, Cost: cost, Scheduler: cfg.sched,
						},
						CollectiveParallelism: 32,
					})
					if err != nil {
						return err
					}
					defer f.Close()
					f.IO().CollectiveBufferSize = stripe

					box := slab(c.Rank())
					buf := make([]byte, box.Volume()*8)
					for i := range buf {
						buf[i] = byte(c.Rank() + i)
					}
					if err := f.WriteSectionAll(box, buf, drxmp.RowMajor); err != nil {
						return err
					}
					if err := c.Barrier(); err != nil {
						return err
					}
					if c.Rank() == 0 {
						b.ResetTimer()
					}
					for i := 0; i < b.N; i++ {
						if write {
							err = f.WriteSectionAll(box, buf, drxmp.RowMajor)
						} else {
							err = f.ReadSectionAll(box, buf, drxmp.RowMajor)
						}
						if err != nil {
							return err
						}
					}
					return c.Barrier()
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkCollective measures the parallel two-phase collective
// against the serial one (the acceptance benchmark of the collective
// parallelization): 4 ranks collectively read/write slab sections of an
// f64 array over 16 real-time striped servers, with the aggregate phase
// running serial (CollectiveParallelism -1) or on 8 workers per rank.
// The servers sleep their charged service time inside their request
// queues, so the parallel/serial ns-per-op ratio is genuine wall-clock
// overlap: parallel aggregators keep every server busy, serial ones
// leave most idle. Throughput (MB/s) counts the bytes all ranks move.
func BenchmarkCollective(b *testing.B) {
	const (
		n       = 256
		chunk   = 32
		ranks   = 4
		servers = 16
	)
	stripe := int64(8 << 10)
	cost := pfs.CostModel{
		RequestOverhead: 150 * time.Microsecond,
		ByteTime:        10 * time.Nanosecond,
		RealTime:        true,
	}
	slab := func(r int) drxmp.Box {
		q := (n + ranks - 1) / ranks
		hi := (r + 1) * q
		if hi > n {
			hi = n
		}
		return drxmp.NewBox([]int{r * q, 0}, []int{hi, n})
	}
	for _, write := range []bool{false, true} {
		op := "read"
		if write {
			op = "write"
		}
		for _, cfg := range []struct {
			name    string
			workers int
		}{{"serial", -1}, {"par8", 8}} {
			b.Run(op+"/"+cfg.name, func(b *testing.B) {
				b.SetBytes(int64(n) * n * 8)
				err := cluster.Run(ranks, func(c *cluster.Comm) error {
					f, err := drxmp.Create(c, fmt.Sprintf("bc-%s-%s", op, cfg.name), drxmp.Options{
						DType: drxmp.Float64, ChunkShape: []int{chunk, chunk}, Bounds: []int{n, n},
						FS:                    pfs.Options{Servers: servers, StripeSize: stripe, Cost: cost},
						CollectiveParallelism: cfg.workers,
					})
					if err != nil {
						return err
					}
					defer f.Close()
					// Stripe-sized rounds: each aggregate-phase request
					// lands on one server, so in-flight depth decides how
					// many of the 16 servers stay busy.
					f.IO().CollectiveBufferSize = stripe

					box := slab(c.Rank())
					buf := make([]byte, box.Volume()*8)
					for i := range buf {
						buf[i] = byte(c.Rank() + i)
					}
					// Seed so reads hit written data, then time b.N ops.
					if err := f.WriteSectionAll(box, buf, drxmp.RowMajor); err != nil {
						return err
					}
					if err := c.Barrier(); err != nil {
						return err
					}
					if c.Rank() == 0 {
						b.ResetTimer()
					}
					for i := 0; i < b.N; i++ {
						if write {
							err = f.WriteSectionAll(box, buf, drxmp.RowMajor)
						} else {
							err = f.ReadSectionAll(box, buf, drxmp.RowMajor)
						}
						if err != nil {
							return err
						}
					}
					return c.Barrier()
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
