package drxmp_test

import (
	"fmt"
	"testing"
	"time"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

// BenchmarkCollectiveScheduler measures the elevator queue discipline
// against FIFO (the acceptance benchmark of the scheduler tentpole): 4
// ranks collectively read/write interleaved slabs over 8 real-time
// servers whose cost model charges 2 ms per seek, with 32 aggregate
// workers per rank keeping every server's queue deep. Under FIFO the
// interleaved arrivals pay a seek on nearly every request; the
// elevator freezes its reorder window, sweeps it in ascending offset
// order, and merges physically adjacent segments, so most of the seek
// latency vanishes from the wall clock. Both run adaptive cb_nodes
// (the default), so the only variable is the service discipline.
func BenchmarkCollectiveScheduler(b *testing.B) {
	const (
		n       = 192
		chunk   = 32
		ranks   = 4
		servers = 8
	)
	stripe := int64(2 << 10)
	cost := pfs.CostModel{
		RequestOverhead: 100 * time.Microsecond,
		SeekLatency:     2 * time.Millisecond,
		ByteTime:        10 * time.Nanosecond,
		RealTime:        true,
	}
	slab := func(r int) drxmp.Box {
		q := (n + ranks - 1) / ranks
		hi := (r + 1) * q
		if hi > n {
			hi = n
		}
		return drxmp.NewBox([]int{r * q, 0}, []int{hi, n})
	}
	for _, write := range []bool{false, true} {
		op := "read"
		if write {
			op = "write"
		}
		for _, cfg := range []struct {
			name  string
			sched pfs.Scheduler
		}{{"fifo", pfs.FIFO}, {"elevator", pfs.Elevator}} {
			b.Run(op+"/"+cfg.name, func(b *testing.B) {
				b.SetBytes(int64(n) * n * 8)
				err := cluster.Run(ranks, func(c *cluster.Comm) error {
					f, err := drxmp.Create(c, fmt.Sprintf("bs-%s-%s", op, cfg.name), drxmp.Options{
						DType: drxmp.Float64, ChunkShape: []int{chunk, chunk}, Bounds: []int{n, n},
						FS: pfs.Options{
							Servers: servers, StripeSize: stripe, Cost: cost, Scheduler: cfg.sched,
						},
						Tuning: drxmp.Tuning{CollectiveParallelism: 32},
					})
					if err != nil {
						return err
					}
					defer f.Close()
					f.IO().CollectiveBufferSize = stripe

					box := slab(c.Rank())
					buf := make([]byte, box.Volume()*8)
					for i := range buf {
						buf[i] = byte(c.Rank() + i)
					}
					if err := f.WriteSectionAll(box, buf, drxmp.RowMajor); err != nil {
						return err
					}
					if err := c.Barrier(); err != nil {
						return err
					}
					if c.Rank() == 0 {
						b.ResetTimer()
					}
					for i := 0; i < b.N; i++ {
						if write {
							err = f.WriteSectionAll(box, buf, drxmp.RowMajor)
						} else {
							err = f.ReadSectionAll(box, buf, drxmp.RowMajor)
						}
						if err != nil {
							return err
						}
					}
					return c.Barrier()
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkCollective measures the two-phase collective at serial and
// 8-worker CollectiveParallelism: 4 ranks collectively read/write slab
// sections of an f64 array over 16 real-time striped servers. Since
// the aggregate phase went vectored (each aggregator issues its capped
// runs as one ReadV/WriteV, queuing every per-server segment up
// front), the serial and parallel rows run neck and neck at the old
// parallel path's throughput — workers now only drive the exchange
// carving. The pair is kept to pin that property across PRs.
func BenchmarkCollective(b *testing.B) {
	const (
		n       = 256
		chunk   = 32
		ranks   = 4
		servers = 16
	)
	stripe := int64(8 << 10)
	cost := pfs.CostModel{
		RequestOverhead: 150 * time.Microsecond,
		ByteTime:        10 * time.Nanosecond,
		RealTime:        true,
	}
	slab := func(r int) drxmp.Box {
		q := (n + ranks - 1) / ranks
		hi := (r + 1) * q
		if hi > n {
			hi = n
		}
		return drxmp.NewBox([]int{r * q, 0}, []int{hi, n})
	}
	for _, write := range []bool{false, true} {
		op := "read"
		if write {
			op = "write"
		}
		for _, cfg := range []struct {
			name    string
			workers int
		}{{"serial", -1}, {"par8", 8}} {
			b.Run(op+"/"+cfg.name, func(b *testing.B) {
				b.SetBytes(int64(n) * n * 8)
				err := cluster.Run(ranks, func(c *cluster.Comm) error {
					f, err := drxmp.Create(c, fmt.Sprintf("bc-%s-%s", op, cfg.name), drxmp.Options{
						DType: drxmp.Float64, ChunkShape: []int{chunk, chunk}, Bounds: []int{n, n},
						FS:     pfs.Options{Servers: servers, StripeSize: stripe, Cost: cost},
						Tuning: drxmp.Tuning{CollectiveParallelism: cfg.workers},
					})
					if err != nil {
						return err
					}
					defer f.Close()
					// Stripe-sized rounds: each aggregate-phase request
					// lands on one server, so in-flight depth decides how
					// many of the 16 servers stay busy.
					f.IO().CollectiveBufferSize = stripe

					box := slab(c.Rank())
					buf := make([]byte, box.Volume()*8)
					for i := range buf {
						buf[i] = byte(c.Rank() + i)
					}
					// Seed so reads hit written data, then time b.N ops.
					if err := f.WriteSectionAll(box, buf, drxmp.RowMajor); err != nil {
						return err
					}
					if err := c.Barrier(); err != nil {
						return err
					}
					if c.Rank() == 0 {
						b.ResetTimer()
					}
					for i := 0; i < b.N; i++ {
						if write {
							err = f.WriteSectionAll(box, buf, drxmp.RowMajor)
						} else {
							err = f.ReadSectionAll(box, buf, drxmp.RowMajor)
						}
						if err != nil {
							return err
						}
					}
					return c.Barrier()
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkCollectiveReadCache measures the read side of the unified
// extent cache (the acceptance benchmark of the read-cache tentpole):
// one epoch = every chunk-row band of a seeded array read by a
// separate 4-rank collective, bands visited in stride order, over 8
// real-time servers charging 2 ms per seek. The no-cache rows pay the
// full server traffic on every epoch; the cache rows run one untimed
// priming epoch and then serve every timed epoch from the shared
// extent cache — the warm sectioned re-read the paper's out-of-core
// scans repeat. Acceptance bar: warm >= 1.5x the no-cache epoch.
func BenchmarkCollectiveReadCache(b *testing.B) {
	const (
		n       = 192
		chunk   = 32
		ranks   = 4
		servers = 8
	)
	stripe := int64(2 << 10)
	cost := pfs.CostModel{
		RequestOverhead: 100 * time.Microsecond,
		SeekLatency:     2 * time.Millisecond,
		ByteTime:        10 * time.Nanosecond,
		RealTime:        true,
	}
	for _, cfg := range []struct {
		name  string
		cache int64
	}{
		{"nocache", 0},
		{"cache", n * n * 8 * 2},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(int64(n) * n * 8)
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				f, err := drxmp.Create(c, "brc-"+cfg.name, drxmp.Options{
					DType: drxmp.Float64, ChunkShape: []int{chunk, chunk}, Bounds: []int{n, n},
					FS: pfs.Options{
						Servers: servers, StripeSize: stripe, Cost: cost,
						Scheduler: pfs.Elevator,
					},
					Tuning: drxmp.Tuning{
						CollectiveParallelism: 8,
						CacheBytes:            cfg.cache,
					},
				})
				if err != nil {
					return err
				}
				defer f.Close()
				f.IO().CollectiveBufferSize = stripe

				q := n / ranks
				bands := n / chunk
				var perm []int
				for t := 0; t < bands; t += 2 {
					perm = append(perm, t)
				}
				for t := 1; t < bands; t += 2 {
					perm = append(perm, t)
				}
				seed := make([]byte, int64(n)*int64(q)*8)
				for j := range seed {
					seed[j] = byte(c.Rank() + j)
				}
				full := drxmp.NewBox([]int{0, c.Rank() * q}, []int{n, (c.Rank() + 1) * q})
				if err := f.WriteSectionAll(full, seed, drxmp.RowMajor); err != nil {
					return err
				}
				epoch := func() error {
					for _, t := range perm {
						box := drxmp.NewBox(
							[]int{t * chunk, c.Rank() * q},
							[]int{(t + 1) * chunk, (c.Rank() + 1) * q})
						buf := make([]byte, box.Volume()*8)
						if err := f.ReadSectionAll(box, buf, drxmp.RowMajor); err != nil {
							return err
						}
					}
					return nil
				}
				// Priming epoch (untimed for both configs, so the rows
				// differ only in where the timed epochs are served from).
				if err := epoch(); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					if err := epoch(); err != nil {
						return err
					}
				}
				return c.Barrier()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCollectiveWriteBehind measures write-behind collective
// buffering against immediate dispatch (the acceptance benchmark of
// the write-behind tentpole): one epoch = every chunk-row band of the
// array written by a separate 4-rank collective, bands visited in
// stride order so immediate dispatch seeks between collectives, over 8
// real-time servers charging 2 ms per seek. The write-behind rows
// absorb the per-collective unions into the dirty-extent cache (stable
// cyclic aggregation domains keep successive unions mergeable) and
// flush once per watermark crossing / Sync as a vectored, seek-free
// sweep — the timed loop includes the Sync, so the deferred flush is
// paid where it runs.
func BenchmarkCollectiveWriteBehind(b *testing.B) {
	const (
		n       = 192
		chunk   = 32
		ranks   = 4
		servers = 8
	)
	stripe := int64(2 << 10)
	cost := pfs.CostModel{
		RequestOverhead: 100 * time.Microsecond,
		SeekLatency:     2 * time.Millisecond,
		ByteTime:        10 * time.Nanosecond,
		RealTime:        true,
	}
	for _, cfg := range []struct {
		name string
		wb   int64
	}{
		{"immediate", 0},
		{"watermark", n * n * 8 / 2},
		{"close-only", -1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(int64(n) * n * 8)
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				f, err := drxmp.Create(c, "bwb-"+cfg.name, drxmp.Options{
					DType: drxmp.Float64, ChunkShape: []int{chunk, chunk}, Bounds: []int{n, n},
					FS: pfs.Options{
						Servers: servers, StripeSize: stripe, Cost: cost,
						Scheduler: pfs.Elevator,
					},
					Tuning: drxmp.Tuning{
						CollectiveParallelism: 8,
						WriteBehindBytes:      cfg.wb,
					},
				})
				if err != nil {
					return err
				}
				defer f.Close()
				f.IO().CollectiveBufferSize = stripe

				q := n / ranks
				bands := n / chunk
				var perm []int
				for t := 0; t < bands; t += 2 {
					perm = append(perm, t)
				}
				for t := 1; t < bands; t += 2 {
					perm = append(perm, t)
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					for _, t := range perm {
						box := drxmp.NewBox(
							[]int{t * chunk, c.Rank() * q},
							[]int{(t + 1) * chunk, (c.Rank() + 1) * q})
						buf := make([]byte, box.Volume()*8)
						for j := range buf {
							buf[j] = byte(c.Rank() + t + j)
						}
						if err := f.WriteSectionAll(box, buf, drxmp.RowMajor); err != nil {
							return err
						}
					}
					if err := f.Sync(); err != nil {
						return err
					}
				}
				return c.Barrier()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
