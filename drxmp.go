// Package drxmp is the Disk Resident Extendible Array library for
// multi-processing — the paper's DRX-MP.
//
// A principal array is stored out-of-core in a (simulated) parallel file
// system as fixed-shape chunks whose linear addresses come from the
// axial-vector mapping function F* (internal/core). The array can be
// extended along any dimension, by any process group, without
// reorganizing previously written chunks. Parallel programs (package
// internal/cluster provides the SPMD runtime standing in for MPI) open
// the array collectively; the metadata — the axial vectors — is
// replicated in every process, so any process computes the address of
// any chunk and the owner of any element without communication.
//
// Sub-arrays are read/written either independently or collectively
// (two-phase I/O via internal/mpiio), into memory laid out in C or
// Fortran order regardless of the on-disk chunk order. The Distribute
// method materializes the Global-Array-style processing model: each
// process holds its zone in memory and any process can Get/Put/
// Accumulate any element via one-sided access (internal/rma).
//
// The serial counterpart is package drx.
package drxmp

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"drxmp/internal/cluster"
	"drxmp/internal/dtype"
	"drxmp/internal/grid"
	"drxmp/internal/meta"
	"drxmp/internal/mpiio"
	"drxmp/internal/par"
	"drxmp/internal/pfs"
	"drxmp/internal/place"
	"drxmp/internal/zone"
)

// Re-exported element types and orders (see package drx for the serial
// library's identical aliases).
type (
	// DType is an element data type.
	DType = dtype.T
	// Order is a memory layout order.
	Order = grid.Order
	// Box is a half-open sub-array region.
	Box = grid.Box
	// CacheStats is the unified extent cache's cumulative accounting
	// (see File.CacheStats).
	CacheStats = mpiio.CacheStats
)

// Element types and orders.
const (
	Int32      = dtype.Int32
	Int64      = dtype.Int64
	Float32    = dtype.Float32
	Float64    = dtype.Float64
	Complex64  = dtype.Complex64
	Complex128 = dtype.Complex128

	RowMajor = grid.RowMajor
	ColMajor = grid.ColMajor
)

// NewBox builds a half-open box [lo, hi).
func NewBox(lo, hi []int) Box { return grid.NewBox(lo, hi) }

// ErrBadOptions is the typed validation error of Create, OpenWith and
// SetTuning: every rejected option wraps it, so callers (and the
// serving tier mapping tenant knobs onto files) can errors.Is instead
// of string-matching.
var ErrBadOptions = errors.New("drxmp: bad options")

// Tuning is the shared performance-knob block of Options and
// OpenOptions — everything that shapes HOW bytes move, none of WHAT
// they are. The zero value is a valid default for every field. A
// tenant's knobs apply atomically after open through File.SetTuning.
type Tuning struct {
	// Parallelism bounds the worker goroutines used per rank for
	// independent section I/O and one-sided section transfers: 0 (the
	// default) selects GOMAXPROCS, negative forces the serial path, and
	// values above GOMAXPROCS are honored (the workers overlap I/O
	// latency across the striped servers, not CPU).
	Parallelism int
	// CollectiveParallelism bounds the worker goroutines each rank uses
	// inside a collective call (ReadSectionAll/WriteSectionAll): the
	// two-phase aggregate-stage file requests and exchange-stage piece
	// carving fan out across up to this many workers, with the same
	// 0=auto / negative=serial semantics as Parallelism. The parallel
	// and serial collective paths produce byte-identical arrays; the
	// workers only change how much per-server service time overlaps.
	CollectiveParallelism int
	// CBNodes bounds how many aggregators a collective call uses (the
	// ROMIO "cb_nodes" analogue): 0 (the default) picks adaptively —
	// one aggregator per stripe of payload, clamped to [1, nranks] —
	// positive fixes the count, negative forces one aggregator per rank
	// (the pre-adaptive behavior). Aggregator selection never changes
	// the bytes, only how the two-phase transfer is carved. Every rank
	// must pass the same value. The queue discipline of the backing
	// servers is the FS.Scheduler knob (pfs.FIFO / pfs.Elevator).
	CBNodes int
	// WriteBehindBytes selects write-behind buffering for collective
	// writes: 0 (the default) dispatches each collective's coalesced
	// union immediately; > 0 buffers dirty unions across collectives
	// and flushes the cache in one vectored sweep once that many bytes
	// are buffered (the watermark counts the file's total buffered
	// bytes — the cache is shared by every rank's handle); < 0 buffers
	// without bound (flush on Sync, Close, or read coherence only).
	// Reads through any handle — independent or collective, any rank —
	// observe the deferred bytes: they are served from the cache when
	// CacheBytes is set, and flushed first otherwise. Use Sync for
	// durability ordering (bytes on the servers) and around concurrent
	// conflicting access, whose outcome is otherwise undefined exactly
	// as in MPI. Every rank must pass the same value.
	WriteBehindBytes int64
	// CacheBytes enables the read side of the unified per-file extent
	// cache with that memory budget in bytes: independent and
	// collective reads fetch sieve-aligned covering blocks (one
	// vectored request per miss) into the cache, hole-free re-reads
	// come from memory, and the budget caps the file's TOTAL cached
	// bytes — clean extents evict LRU-first, deferred write-behind
	// extents flush-on-evict. 0 (the default) disables read caching.
	// The cache is shared by every rank's handle on the store, so a
	// block fetched by one rank warms all of them. The sieve block
	// granularity is the stripe size unless IO().SieveSize overrides
	// it. Every rank must pass the same value.
	CacheBytes int64
	// ReadAheadBytes extends each sieve fetch past the requested range
	// by this many bytes (rounded up to whole sieve blocks), so a
	// forward sectioned scan finds its next block already cached. 0
	// (the default) disables read-ahead. Meaningful only with
	// CacheBytes > 0. Every rank must pass the same value.
	ReadAheadBytes int64
	// SpillBytes enables the local-disk spill tier of the extent cache
	// with that byte budget: extents evicted from the CacheBytes memory
	// tier demote to a local spill file instead of dropping (clean) or
	// flushing (dirty), reads consult memory → spill → pfs with spill
	// hits promoted back under LRU, and write-behind can buffer far
	// past RAM (spilled dirty bytes count toward the watermark and
	// flush in the same vectored sweep). 0 (the default) disables the
	// tier; requires CacheBytes > 0. Every rank must pass the same
	// value.
	SpillBytes int64
	// SpillPath names the spill file; empty (the default) selects a
	// temp file. The file is created at first use and removed when the
	// array's store closes. Meaningful only with SpillBytes > 0.
	SpillPath string
	// AdaptiveIO enables histogram-driven tuning: the cache
	// periodically re-derives its effective sieve block and read-ahead
	// from the server request-size histograms (p90, stripe-rounded) and
	// the observed read sequentiality, overriding the static
	// ReadAheadBytes / IO().SieveSize values. Requires CacheBytes > 0.
	// Every rank must pass the same value.
	AdaptiveIO bool
	// Placement selects the collective aggregation-domain placement
	// policy: "" (the default) keeps the historical byte arithmetic —
	// byte- and accounting-identical to the pre-policy stack —
	// PlacementByteCyclic names the same arithmetic as an explicit
	// policy, PlacementZoneCurve carves domains out of whole chunks
	// ordered along a zone (Morton) curve, and PlacementCacheAffinity
	// assigns every chunk a sticky aggregator from a static zone-curve
	// cut of the chunk grid, so repeated collectives re-elect the same
	// aggregator per region. Any non-empty policy also elects one
	// flusher per file region at watermark crossings and Sync (see
	// NoFlushElection). Every rank must pass the same value.
	Placement string
	// NoFlushElection keeps the uncoordinated flush behavior (every
	// watermark-crossing rank sweeps the whole cache) while a Placement
	// policy is active — the ablation knob E24 measures. Meaningful
	// only with Placement set. Every rank must pass the same value.
	NoFlushElection bool
}

// Placement policy names accepted by Tuning.Placement.
const (
	PlacementByteCyclic    = "byte-cyclic"
	PlacementZoneCurve     = "zone-curve"
	PlacementCacheAffinity = "cache-affinity"
)

// validate rejects knob values with no defined meaning. Negative
// Parallelism/CollectiveParallelism (serial), CBNodes (one aggregator
// per rank) and WriteBehindBytes (unbounded buffering) are meaningful
// and stay legal.
func (t Tuning) validate() error {
	if t.CacheBytes < 0 {
		return fmt.Errorf("%w: negative CacheBytes %d", ErrBadOptions, t.CacheBytes)
	}
	if t.ReadAheadBytes < 0 {
		return fmt.Errorf("%w: negative ReadAheadBytes %d", ErrBadOptions, t.ReadAheadBytes)
	}
	if t.SpillBytes < 0 {
		return fmt.Errorf("%w: negative SpillBytes %d", ErrBadOptions, t.SpillBytes)
	}
	if t.SpillBytes > 0 && t.CacheBytes == 0 {
		return fmt.Errorf("%w: SpillBytes %d without CacheBytes (the spill tier backs the memory tier)", ErrBadOptions, t.SpillBytes)
	}
	if t.SpillPath != "" && t.SpillBytes == 0 {
		return fmt.Errorf("%w: SpillPath %q without SpillBytes", ErrBadOptions, t.SpillPath)
	}
	if t.AdaptiveIO && t.CacheBytes == 0 {
		return fmt.Errorf("%w: AdaptiveIO without CacheBytes (the controller tunes the cache)", ErrBadOptions)
	}
	switch t.Placement {
	case "", PlacementByteCyclic, PlacementZoneCurve, PlacementCacheAffinity:
	default:
		return fmt.Errorf("%w: unknown Placement %q", ErrBadOptions, t.Placement)
	}
	if t.NoFlushElection && t.Placement == "" {
		return fmt.Errorf("%w: NoFlushElection without Placement (election rides on a policy)", ErrBadOptions)
	}
	return nil
}

// Options configures Create.
type Options struct {
	// DType is the element type (required).
	DType DType
	// ChunkShape is the chunk shape in elements (required).
	ChunkShape []int
	// Bounds is the initial element bounds (required).
	Bounds []int
	// Order is the within-chunk element order (default RowMajor).
	Order Order
	// FS configures the backing parallel file system (zero value: one
	// in-memory server).
	FS pfs.Options
	// Decomp selects the zone decomposition (default BLOCK).
	Decomp zone.Kind
	// CyclicBlock is the BLOCK_CYCLIC(k) block size (default 1;
	// negative is rejected).
	CyclicBlock int
	// Tuning carries the performance knobs (worker bounds, aggregator
	// count, write-behind, cache budget, read-ahead). Every rank must
	// pass identical values.
	Tuning
}

// OpenOptions configures OpenWith. Unlike the legacy positional Open,
// it can set every tuning knob at open time, and its shape mirrors
// Options so create-vs-open call sites stay symmetric.
type OpenOptions struct {
	// FS configures the backing parallel file system. The backend is
	// forced to Disk (only disk-backed arrays can be re-opened) and a
	// zero Dir defaults to the array path's directory.
	FS pfs.Options
	// Decomp selects the zone decomposition (default BLOCK).
	Decomp zone.Kind
	// CyclicBlock is the BLOCK_CYCLIC(k) block size (default 1;
	// negative is rejected).
	CyclicBlock int
	// Tuning carries the performance knobs, as in Options.
	Tuning
}

// File is one process's handle on a shared extendible array file. All
// processes of the communicator hold a replica of the metadata; methods
// marked collective must be called by every process.
type File struct {
	comm *cluster.Comm
	m    *meta.Meta
	fs   *pfs.FS
	io   *mpiio.File
	path string

	kind        zone.Kind
	cyclicBlock int
	diskBacked  bool
	par         int // Parallelism knob (see Options.Parallelism)

	decomp *zone.Decomp // cached; invalidated by extensions
}

var fsSeq atomic.Int64

// shareFS publishes rank 0's FS so all ranks address the same store
// (in a real deployment this is the shared PVFS2 volume).
func shareFS(c *cluster.Comm, mk func() (*pfs.FS, error)) (*pfs.FS, error) {
	var key string
	var mkErr error
	if c.Rank() == 0 {
		fs, err := mk()
		if err != nil {
			mkErr = err
			key = ""
		} else {
			key = fmt.Sprintf("drxmp/fs/%d", fsSeq.Add(1))
			c.World().SharedPut(key, fs)
		}
	}
	kb, err := c.Bcast(0, []byte(key))
	if err != nil {
		return nil, err
	}
	if len(kb) == 0 {
		if mkErr != nil {
			return nil, mkErr
		}
		return nil, errors.New("drxmp: file system creation failed on rank 0")
	}
	v, ok := c.World().SharedGet(string(kb))
	if !ok {
		return nil, errors.New("drxmp: shared file system missing")
	}
	return v.(*pfs.FS), nil
}

// Create collectively creates a new extendible array (DRXMP_Init of the
// paper). Every rank must pass identical options. Validation failures
// wrap ErrBadOptions.
func Create(c *cluster.Comm, path string, opts Options) (*File, error) {
	if opts.Order != RowMajor && opts.Order != ColMajor {
		return nil, fmt.Errorf("%w: invalid order %v", ErrBadOptions, opts.Order)
	}
	if opts.CyclicBlock < 0 {
		return nil, fmt.Errorf("%w: negative CyclicBlock %d", ErrBadOptions, opts.CyclicBlock)
	}
	if opts.CyclicBlock == 0 {
		opts.CyclicBlock = 1
	}
	if err := opts.Tuning.validate(); err != nil {
		return nil, err
	}
	// Rank 0 builds the metadata; everyone receives the encoded replica
	// (identical construction everywhere would also work — the paper
	// replicates the metadata, which we model faithfully).
	var blob []byte
	var mkErr error
	if c.Rank() == 0 {
		m, err := meta.New(opts.DType, opts.Order, opts.ChunkShape, opts.Bounds)
		if err != nil {
			mkErr = err
		} else {
			blob = m.Encode()
		}
	}
	blob, err := c.Bcast(0, blob)
	if err != nil {
		return nil, err
	}
	if len(blob) == 0 {
		if mkErr != nil {
			return nil, mkErr
		}
		return nil, errors.New("drxmp: metadata creation failed on rank 0")
	}
	m, err := meta.Decode(blob)
	if err != nil {
		return nil, err
	}
	fsOpts := opts.FS
	if fsOpts.Backend == pfs.Disk && fsOpts.Dir == "" {
		fsOpts.Dir = filepath.Dir(path)
	}
	fs, err := shareFS(c, func() (*pfs.FS, error) {
		return pfs.Create(filepath.Base(path)+".xta", fsOpts)
	})
	if err != nil {
		return nil, err
	}
	f := &File{
		comm:        c,
		m:           m,
		fs:          fs,
		io:          mpiio.Open(c, fs),
		path:        path,
		kind:        opts.Decomp,
		cyclicBlock: opts.CyclicBlock,
		diskBacked:  fsOpts.Backend == pfs.Disk,
		par:         opts.Parallelism,
	}
	if err := f.applyTuning(opts.Tuning); err != nil {
		// The one failing knob is the spill-tier open, which is
		// attempted exactly once on the shared cache (the failure is
		// sticky), so every rank observes the same error and returns
		// here uniformly — no agreement round needed. Rank 0 owns the
		// store it just created and releases it.
		if c.Rank() == 0 {
			fs.Close()
		}
		return nil, err
	}
	// Agree on the metadata-persist outcome before any rank returns a
	// handle: persistMeta can only fail on rank 0 (it is a no-op
	// elsewhere), and without the agreement round the other ranks would
	// return healthy handles on a store rank 0 is about to release.
	perr := f.persistMeta()
	ok := []byte{1}
	if perr != nil {
		ok = []byte{0}
	}
	ok, err = c.Bcast(0, ok)
	if err != nil {
		return nil, err
	}
	if len(ok) == 0 || ok[0] == 0 {
		// Rank 0 owns the store it just created: release it (queue
		// goroutines, disk files) rather than leak it on a failed create.
		if c.Rank() == 0 {
			fs.Close()
			return nil, perr
		}
		return nil, fmt.Errorf("drxmp: create %s: metadata persist failed on rank 0", path)
	}
	return f, c.Barrier()
}

// OpenWith collectively opens an existing disk-backed array
// (DRXMP_Open): rank 0 reads the .xmd file and broadcasts it; every
// process installs its replica. Unlike the legacy Open it accepts the
// full Tuning block, so every knob a Create can set is available at
// open time too. Validation failures wrap ErrBadOptions.
func OpenWith(c *cluster.Comm, path string, opts OpenOptions) (*File, error) {
	if opts.CyclicBlock < 0 {
		return nil, fmt.Errorf("%w: negative CyclicBlock %d", ErrBadOptions, opts.CyclicBlock)
	}
	if opts.CyclicBlock == 0 {
		opts.CyclicBlock = 1
	}
	if err := opts.Tuning.validate(); err != nil {
		return nil, err
	}
	var blob []byte
	var rdErr error
	if c.Rank() == 0 {
		blob, rdErr = os.ReadFile(path + ".xmd")
	}
	blob, err := c.Bcast(0, blob)
	if err != nil {
		return nil, err
	}
	if len(blob) == 0 {
		if rdErr != nil {
			return nil, rdErr
		}
		return nil, fmt.Errorf("drxmp: empty metadata for %s", path)
	}
	m, err := meta.Decode(blob)
	if err != nil {
		return nil, err
	}
	fsOpts := opts.FS
	fsOpts.Backend = pfs.Disk
	if fsOpts.Dir == "" {
		fsOpts.Dir = filepath.Dir(path)
	}
	fs, err := shareFS(c, func() (*pfs.FS, error) {
		return pfs.Open(filepath.Base(path)+".xta", fsOpts)
	})
	if err != nil {
		return nil, err
	}
	f := &File{
		comm:        c,
		m:           m,
		fs:          fs,
		io:          mpiio.Open(c, fs),
		path:        path,
		kind:        opts.Decomp,
		cyclicBlock: opts.CyclicBlock,
		diskBacked:  true,
		par:         opts.Parallelism,
	}
	if err := f.applyTuning(opts.Tuning); err != nil {
		// Same uniform-error reasoning as in Create.
		if c.Rank() == 0 {
			fs.Close()
		}
		return nil, err
	}
	return f, c.Barrier()
}

// Open collectively opens an existing disk-backed array with the
// legacy positional signature.
//
// Deprecated: use OpenWith, which can also set the tuning knobs at
// open time. Open remains as a thin wrapper so existing callers build.
func Open(c *cluster.Comm, path string, fsOpts pfs.Options, kind zone.Kind, cyclicBlock int) (*File, error) {
	return OpenWith(c, path, OpenOptions{FS: fsOpts, Decomp: kind, CyclicBlock: cyclicBlock})
}

// Close collectively closes the array (DRXMP_Close). Every rank first
// flushes its write-behind cache (deferred collective writes become
// durable before the store shuts down — the flush-before-close
// guarantee), then rank 0 persists the metadata and closes the shared
// store. The store's own close-flusher hook (pfs.AddCloseFlusher) backs
// this up for callers that close the FS directly.
func (f *File) Close() error {
	serr := f.io.Sync()
	if err := f.persistMeta(); err != nil {
		return err
	}
	if err := f.comm.Barrier(); err != nil {
		return err
	}
	if f.comm.Rank() == 0 {
		if err := f.fs.Close(); err != nil && serr == nil {
			serr = err
		}
	}
	return serr
}

// Sync collectively flushes the file's write-behind cache to the I/O
// servers (MPI_File_sync): flush, then one agreement round that
// doubles as a barrier, so every rank returns only after all deferred
// collective writes are durably on the servers and any rank's flush
// failure surfaces everywhere. Every rank must call it.
func (f *File) Sync() error {
	return f.io.SyncAll()
}

func (f *File) persistMeta() error {
	if !f.diskBacked || f.comm.Rank() != 0 {
		return nil
	}
	return os.WriteFile(f.path+".xmd", f.m.Encode(), 0o644)
}

// --- metadata accessors ---

// Comm returns the communicator the file was opened with.
func (f *File) Comm() *cluster.Comm { return f.comm }

// Rank returns the array dimensionality (not the process rank; use
// Comm().Rank() for that).
func (f *File) Rank() int { return f.m.Rank() }

// Bounds returns the current element bounds.
func (f *File) Bounds() []int { return f.m.ElemBounds.Clone() }

// ChunkShape returns the chunk shape in elements.
func (f *File) ChunkShape() []int { return f.m.ChunkShape.Clone() }

// DType returns the element type.
func (f *File) DType() DType { return f.m.DType }

// Order returns the within-chunk element order.
func (f *File) Order() Order { return f.m.MemOrder }

// Chunks returns the number of allocated chunks.
func (f *File) Chunks() int64 { return f.m.Space.Total() }

// Meta exposes this process's metadata replica.
func (f *File) Meta() *meta.Meta { return f.m }

// FS exposes the shared backing store (statistics in benchmarks).
func (f *File) FS() *pfs.FS { return f.fs }

// IO exposes the MPI-IO style handle (to tune collective buffering).
func (f *File) IO() *mpiio.File { return f.io }

// Tuning returns the file's current knob block (raw values, not the
// resolved worker counts — see Parallelism/CollectiveParallelism for
// those). OpenWith/Create round-trip: the Tuning passed in is the
// Tuning read back.
func (f *File) Tuning() Tuning {
	var placement string
	if f.io.Placement != nil {
		placement = f.io.Placement.Name()
	}
	return Tuning{
		Parallelism:           f.par,
		CollectiveParallelism: f.io.Parallelism,
		CBNodes:               f.io.CBNodes,
		WriteBehindBytes:      f.io.WriteBehind,
		CacheBytes:            f.io.CacheBytes,
		ReadAheadBytes:        f.io.ReadAhead,
		SpillBytes:            f.io.SpillBytes,
		SpillPath:             f.io.SpillPath,
		AdaptiveIO:            f.io.AdaptiveIO,
		Placement:             placement,
		NoFlushElection:       placement != "" && !f.io.ElectFlush,
	}
}

// placementPolicy resolves a Tuning.Placement name to its policy
// object (nil for the empty name; validate has rejected anything
// else).
func placementPolicy(name string) place.Policy {
	switch name {
	case PlacementByteCyclic:
		return place.ByteCyclic{}
	case PlacementZoneCurve:
		return place.ZoneCurve{}
	case PlacementCacheAffinity:
		return place.CacheAffinity{}
	}
	return nil
}

// chunkGeom adapts the replicated array metadata to place.Geometry:
// chunk q occupies file bytes [q*ChunkBytes, (q+1)*ChunkBytes) and its
// grid coordinates come from the extendible array's F*⁻¹. Read-only
// over the shared Meta — safe concurrently by the same contract as
// every other metadata read (no concurrent Extend).
type chunkGeom struct{ m *meta.Meta }

func (g chunkGeom) ChunkBytes() int64             { return g.m.ChunkBytes() }
func (g chunkGeom) Chunks() int64                 { return g.m.Space.Total() }
func (g chunkGeom) Bounds() []int                 { return g.m.Space.Bounds() }
func (g chunkGeom) Coords(q int64) ([]int, error) { return g.m.Space.Inverse(q, nil) }

// knobs projects t onto the mpiio handle's parameter block, keeping
// the handle's SieveSize (an IO()-level knob Tuning does not carry).
func (f *File) knobs(t Tuning) mpiio.TuningKnobs {
	policy := placementPolicy(t.Placement)
	var geom place.Geometry
	if policy != nil {
		geom = chunkGeom{m: f.m}
	}
	return mpiio.TuningKnobs{
		Parallelism: t.CollectiveParallelism,
		CBNodes:     t.CBNodes,
		WriteBehind: t.WriteBehindBytes,
		CacheBytes:  t.CacheBytes,
		SieveSize:   f.io.SieveSize,
		ReadAhead:   t.ReadAheadBytes,
		SpillBytes:  t.SpillBytes,
		SpillPath:   t.SpillPath,
		AdaptiveIO:  t.AdaptiveIO,
		Placement:   policy,
		PlaceGeom:   geom,
		ElectFlush:  policy != nil && !t.NoFlushElection,
	}
}

// applyTuning installs t without validation or flush side effects
// (open/create path: nothing can be buffered yet). A spill-tier open
// failure surfaces here — it is the one knob with a resource behind
// it.
func (f *File) applyTuning(t Tuning) error {
	f.par = t.Parallelism
	return f.io.ApplyTuning(f.knobs(t))
}

// SetTuning validates t (ErrBadOptions on rejection) and applies every
// knob atomically — one call instead of six setters, so a serving tier
// can swap a tenant's whole profile between requests. Disabling
// write-behind (newly zero) flushes any buffered dirty extents first,
// exactly as SetWriteBehind does, and returns the flush error. Every
// rank must apply the same Tuning.
func (f *File) SetTuning(t Tuning) error {
	if err := t.validate(); err != nil {
		return err
	}
	f.par = t.Parallelism
	return f.io.ApplyTuning(f.knobs(t))
}

// SetParallelism adjusts the per-rank I/O parallelism knob after open
// (same semantics as Tuning.Parallelism). A wrapper over SetTuning.
func (f *File) SetParallelism(n int) {
	t := f.Tuning()
	t.Parallelism = n
	_ = f.SetTuning(t)
}

// Parallelism returns the resolved worker bound for independent I/O.
func (f *File) Parallelism() int { return par.Resolve(f.par) }

// SetCollectiveParallelism adjusts the per-rank collective I/O worker
// bound after open (same semantics as Tuning.CollectiveParallelism).
func (f *File) SetCollectiveParallelism(n int) {
	t := f.Tuning()
	t.CollectiveParallelism = n
	_ = f.SetTuning(t)
}

// CollectiveParallelism returns the resolved worker bound for the
// two-phase collective stages.
func (f *File) CollectiveParallelism() int { return par.Resolve(f.io.Parallelism) }

// SetCBNodes adjusts the collective aggregator-count knob after open
// (same semantics as Tuning.CBNodes; must match on every rank).
func (f *File) SetCBNodes(n int) {
	t := f.Tuning()
	t.CBNodes = n
	_ = f.SetTuning(t)
}

// CBNodes returns the collective aggregator-count knob (0 = adaptive).
func (f *File) CBNodes() int { return f.io.CBNodes }

// SetWriteBehind adjusts the write-behind policy after open (same
// semantics as Tuning.WriteBehindBytes; must match on every rank).
// Disabling (n == 0) flushes any buffered dirty extents first, so no
// deferred bytes can linger behind a disabled cache.
func (f *File) SetWriteBehind(n int64) error {
	t := f.Tuning()
	t.WriteBehindBytes = n
	return f.SetTuning(t)
}

// WriteBehind returns the write-behind policy knob (0 = immediate).
func (f *File) WriteBehind() int64 { return f.io.WriteBehind }

// SetCacheBytes adjusts the read-cache memory budget after open (same
// semantics as Tuning.CacheBytes; must match on every rank).
// Disabling (n <= 0) releases the cached clean extents; deferred
// write-behind extents stay buffered.
func (f *File) SetCacheBytes(n int64) {
	t := f.Tuning()
	t.CacheBytes = max(n, 0)
	_ = f.SetTuning(t)
}

// CacheBytes returns the read-cache memory budget (0 = disabled).
func (f *File) CacheBytes() int64 { return f.io.CacheBytes }

// SetReadAhead adjusts the sieve read-ahead after open (same semantics
// as Tuning.ReadAheadBytes; must match on every rank).
func (f *File) SetReadAhead(n int64) {
	t := f.Tuning()
	t.ReadAheadBytes = max(n, 0)
	_ = f.SetTuning(t)
}

// ReadAhead returns the sieve read-ahead knob (0 = disabled).
func (f *File) ReadAhead() int64 { return f.io.ReadAhead }

// SpillBytes returns the spill-tier budget (0 = disabled).
func (f *File) SpillBytes() int64 { return f.io.SpillBytes }

// AdaptiveIO reports whether histogram-driven tuning is on.
func (f *File) AdaptiveIO() bool { return f.io.AdaptiveIO }

// CacheStats returns the cumulative unified-cache accounting for the
// file (hits, misses, sieve fetches, evictions, absorbs, flushes).
func (f *File) CacheStats() mpiio.CacheStats { return f.io.CacheStats() }

// Dirty returns the bytes currently buffered by this rank's
// write-behind cache (benchmarks and tests).
func (f *File) Dirty() int64 { return f.io.Dirty() }

// Cached returns the total bytes (clean + dirty) currently held by the
// file's shared extent cache.
func (f *File) Cached() int64 { return f.io.Cached() }

// syncWorkers is the worker bound of the DistArray section-sync paths
// (GetSection/PutSection): the larger of the independent-I/O and
// collective worker budgets, so one-sided section transfers benefit
// from the collective machinery's parallelism even when the
// independent knob is left serial.
func (f *File) syncWorkers() int {
	w := par.Resolve(f.par)
	if cw := par.Resolve(f.io.Parallelism); cw > w {
		w = cw
	}
	return w
}

// Decomp returns the current zone decomposition of the chunk grid. It
// is recomputed from the replicated metadata after extensions, so every
// process always agrees.
func (f *File) Decomp() (*zone.Decomp, error) {
	if f.decomp != nil {
		return f.decomp, nil
	}
	d, err := zone.New(f.kind, grid.Shape(f.m.Space.Bounds()), f.comm.Size(), f.cyclicBlock)
	if err != nil {
		return nil, err
	}
	f.decomp = d
	return d, nil
}

// ZoneBoxes returns rank r's zone in element coordinates (chunk boxes
// scaled by the chunk shape and clipped to the element bounds).
func (f *File) ZoneBoxes(r int) ([]Box, error) {
	d, err := f.Decomp()
	if err != nil {
		return nil, err
	}
	var out []Box
	for _, cb := range d.ZoneOf(r) {
		eb := Box{Lo: make([]int, f.Rank()), Hi: make([]int, f.Rank())}
		for i := 0; i < f.Rank(); i++ {
			eb.Lo[i] = cb.Lo[i] * f.m.ChunkShape[i]
			eb.Hi[i] = cb.Hi[i] * f.m.ChunkShape[i]
			if eb.Hi[i] > f.m.ElemBounds[i] {
				eb.Hi[i] = f.m.ElemBounds[i]
			}
			if eb.Lo[i] > eb.Hi[i] {
				eb.Lo[i] = eb.Hi[i]
			}
		}
		if !eb.Empty() {
			out = append(out, eb)
		}
	}
	return out, nil
}

// MyZone returns the calling process's zone in element coordinates.
func (f *File) MyZone() ([]Box, error) { return f.ZoneBoxes(f.comm.Rank()) }

// OwnerOf returns the rank owning the element at idx.
func (f *File) OwnerOf(idx []int) (int, error) {
	d, err := f.Decomp()
	if err != nil {
		return 0, err
	}
	ci := make([]int, len(idx))
	for i := range idx {
		if idx[i] < 0 || idx[i] >= f.m.ElemBounds[i] {
			return 0, fmt.Errorf("drxmp: index %v outside bounds %v", idx, f.m.ElemBounds)
		}
		ci[i] = idx[i] / f.m.ChunkShape[i]
	}
	return d.Owner(ci)
}

// --- extension ---

// Extend collectively grows dimension dim by `by` elements
// (the paper's Section IV-B parallel expansion). Every process applies
// the identical extension to its metadata replica; no data moves.
func (f *File) Extend(dim, by int) error {
	if by < 1 {
		return fmt.Errorf("drxmp: extend by %d", by)
	}
	if dim < 0 || dim >= f.Rank() {
		return fmt.Errorf("drxmp: dimension %d out of range", dim)
	}
	if err := f.m.ExtendElems(dim, f.m.ElemBounds[dim]+by); err != nil {
		return err
	}
	f.decomp = nil
	if err := f.comm.Barrier(); err != nil {
		return err
	}
	if f.comm.Rank() == 0 {
		if err := f.fs.Truncate(f.m.FileBytes()); err != nil {
			return err
		}
		if err := f.persistMeta(); err != nil {
			return err
		}
	}
	return f.comm.Barrier()
}

// --- section I/O ---

// ioRun is one contiguous file extent of a section transfer plus its
// placement in the user buffer: element e of the run lives at user
// element offset DstStart + e*DstStride.
type ioRun struct {
	fileOff   int64
	elems     int64
	dstStart  int64
	dstStride int64
}

// sectionRuns translates box ∩ chunks into file runs with user-buffer
// placement, sorted by file offset. The caller's buffer is dense over
// box in the given order.
func (f *File) sectionRuns(box Box, order Order) ([]ioRun, error) {
	if box.Rank() != f.Rank() {
		return nil, fmt.Errorf("drxmp: box rank %d != array rank %d", box.Rank(), f.Rank())
	}
	if box.Empty() {
		return nil, nil
	}
	if !grid.BoxOf(f.m.ElemBounds).ContainsBox(box) {
		return nil, fmt.Errorf("drxmp: box %v outside bounds %v", box, f.m.ElemBounds)
	}
	es := int64(f.m.DType.Size())
	boxShape := box.Shape()
	dstStrides := grid.Strides(boxShape, order)
	chunkStrides := grid.Strides(f.m.ChunkShape, f.m.MemOrder)
	// The innermost storage dimension (varies within a chunk row).
	inner := f.Rank() - 1
	if f.m.MemOrder == ColMajor {
		inner = 0
	}

	var runs []ioRun
	var outerErr error
	cover := grid.ChunkCover(box, f.m.ChunkShape)
	cover.Iterate(grid.RowMajor, func(cidx []int) bool {
		q, err := f.m.Space.Map(cidx)
		if err != nil {
			outerErr = err
			return false
		}
		base := q * f.m.ChunkBytes()
		cbox := grid.ChunkBox(cidx, f.m.ChunkShape)
		ibox := cbox.Intersect(box)
		if ibox.Empty() {
			return true
		}
		ibox.Rows(f.m.MemOrder, func(start []int, n int) bool {
			var chunkOff, dstOff int64
			for d := range start {
				chunkOff += int64(start[d]-cbox.Lo[d]) * chunkStrides[d]
				dstOff += int64(start[d]-box.Lo[d]) * dstStrides[d]
			}
			runs = append(runs, ioRun{
				fileOff:   base + chunkOff*es,
				elems:     int64(n),
				dstStart:  dstOff,
				dstStride: dstStrides[inner],
			})
			return true
		})
		return true
	})
	if outerErr != nil {
		return nil, outerErr
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].fileOff < runs[j].fileOff })
	return runs, nil
}

// scatterGather moves bytes between the sorted-run scratch buffer and
// the user buffer.
func (f *File) scatterGather(runs []ioRun, scratch, user []byte, toUser bool) {
	es := int64(f.m.DType.Size())
	var at int64
	for _, r := range runs {
		if r.dstStride == 1 {
			u := user[r.dstStart*es : (r.dstStart+r.elems)*es]
			s := scratch[at : at+r.elems*es]
			if toUser {
				copy(u, s)
			} else {
				copy(s, u)
			}
		} else {
			for e := int64(0); e < r.elems; e++ {
				u := user[(r.dstStart+e*r.dstStride)*es:]
				s := scratch[at+e*es:]
				if toUser {
					copy(u[:es], s[:es])
				} else {
					copy(s[:es], u[:es])
				}
			}
		}
		at += r.elems * es
	}
}

func (f *File) sectionIO(box Box, buf []byte, order Order, write, collective bool) error {
	runs, err := f.sectionRuns(box, order)
	if err != nil {
		return err
	}
	es := int64(f.m.DType.Size())
	var total int64
	for _, r := range runs {
		total += r.elems * es
	}
	if !box.Empty() && int64(len(buf)) < box.Volume()*es {
		return fmt.Errorf("drxmp: buffer of %d bytes for %d-byte section", len(buf), box.Volume()*es)
	}
	scratch := make([]byte, total)
	// Independent I/O with more than one worker goes through the
	// parallel run-group path. Collective I/O parallelizes inside the
	// two-phase exchange itself (mpiio honors io.Parallelism, set from
	// Options.CollectiveParallelism): the communicator collectives keep
	// their fixed rank order, only the piece carving fans out — the
	// aggregate stage is a single vectored request per aggregator.
	var blocks []mpiio.Block
	var pruns []pfs.Run
	if collective {
		blocks = make([]mpiio.Block, len(runs))
		for i, r := range runs {
			blocks[i] = mpiio.Block{Off: r.fileOff, Len: r.elems * es}
		}
	} else {
		// Coalesce adjacent extents (runs are sorted by file offset, and
		// ReadV/WriteV pack them back-to-back, so merging is lossless).
		for _, r := range runs {
			l := r.elems * es
			if n := len(pruns); n > 0 && pruns[n-1].Off+pruns[n-1].Len == r.fileOff {
				pruns[n-1].Len += l
				continue
			}
			pruns = append(pruns, pfs.Run{Off: r.fileOff, Len: l})
		}
		// Unified-cache coherence before any direct store access: writes
		// punch the about-to-be-overwritten ranges out of the cache
		// (clean and dirty), and reads either go THROUGH the cache (read
		// caching on: covered bytes from memory, holes sieve-fetched —
		// see the dispatch below) or flush this rank's intersecting
		// dirty extents first and talk to the store directly.
		if write || !f.cacheActive() {
			if err := f.io.Coherent(pruns, write); err != nil {
				return err
			}
		}
		if workers := f.Parallelism(); workers > 1 && len(runs) > 1 {
			if err := f.sectionIOParallel(runs, scratch, buf, write, workers); err != nil {
				return err
			}
			if write {
				// Close the sieve-fetch race once the group writes have
				// landed (see mpiio.File.PostWrite).
				return f.io.PostWrite(pruns)
			}
			return nil
		}
	}

	if write {
		f.scatterGather(runs, scratch, buf, false)
		if collective {
			if len(blocks) == 0 {
				return f.io.WriteAllAt(nil, 0)
			}
			ft, err := mpiio.FromBlocks(blocks)
			if err != nil {
				return err
			}
			if err := f.io.SetView(0, ft); err != nil {
				return err
			}
			return f.io.WriteAllAt(scratch, 0)
		}
		if _, err := f.fs.WriteV(pruns, scratch); err != nil {
			return err
		}
		return f.io.PostWrite(pruns)
	}
	if collective {
		if len(blocks) == 0 {
			return f.io.ReadAllAt(nil, 0)
		}
		ft, err := mpiio.FromBlocks(blocks)
		if err != nil {
			return err
		}
		if err := f.io.SetView(0, ft); err != nil {
			return err
		}
		if err := f.io.ReadAllAt(scratch, 0); err != nil {
			return err
		}
	} else if f.cacheActive() {
		// Cache-coherent independent read: one ReadV through the unified
		// cache serves cached stripes from memory and sieve-fetches the
		// holes as a single vectored request.
		if err := f.io.ReadV(pruns, scratch); err != nil {
			return err
		}
	} else {
		if _, err := f.fs.ReadV(pruns, scratch); err != nil {
			return err
		}
	}
	f.scatterGather(runs, scratch, buf, true)
	return nil
}

// cacheActive reports whether independent reads route through the
// unified extent cache (Options.CacheBytes > 0).
func (f *File) cacheActive() bool { return f.io.CacheBytes > 0 }

// ReadSection reads the sub-array `box` into buf (dense, in the given
// order) with independent I/O.
func (f *File) ReadSection(box Box, buf []byte, order Order) error {
	return f.sectionIO(box, buf, order, false, false)
}

// WriteSection writes buf (dense over box in the given order) with
// independent I/O. Partial chunk coverage is handled exactly: only the
// covered byte runs are written.
func (f *File) WriteSection(box Box, buf []byte, order Order) error {
	return f.sectionIO(box, buf, order, true, false)
}

// ReadSectionAll is the collective read (DRXMP_Read_all): every process
// of the communicator must call it, each with its own box (possibly
// empty). Two-phase aggregation turns the interleaved chunk accesses
// into streaming reads.
func (f *File) ReadSectionAll(box Box, buf []byte, order Order) error {
	return f.sectionIO(box, buf, order, false, true)
}

// WriteSectionAll is the collective write (DRXMP_Write_all).
func (f *File) WriteSectionAll(box Box, buf []byte, order Order) error {
	return f.sectionIO(box, buf, order, true, true)
}

// ReadSectionFloat64s is ReadSection with float64 conversion.
func (f *File) ReadSectionFloat64s(box Box, order Order) ([]float64, error) {
	buf := make([]byte, box.Volume()*int64(f.m.DType.Size()))
	if err := f.ReadSection(box, buf, order); err != nil {
		return nil, err
	}
	return dtype.DecodeFloat64s(f.m.DType, buf, int(box.Volume())), nil
}

// WriteSectionFloat64s is WriteSection from float64 values.
func (f *File) WriteSectionFloat64s(box Box, vals []float64, order Order) error {
	if int64(len(vals)) != box.Volume() {
		return fmt.Errorf("drxmp: %d values for box of %d elements", len(vals), box.Volume())
	}
	return f.WriteSection(box, dtype.EncodeFloat64s(f.m.DType, vals), order)
}
