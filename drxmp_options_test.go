package drxmp_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

// Tests for the Open/Create options redesign: OpenOptions/Tuning knob
// plumbing, ErrBadOptions validation, and Create's partial-failure
// agreement.

func optionsCreateDisk(c *cluster.Comm, path string, tuning drxmp.Tuning) (*drxmp.File, error) {
	return drxmp.Create(c, path, drxmp.Options{
		DType: drxmp.Float64, ChunkShape: []int{8, 8}, Bounds: []int{32, 24},
		FS:     pfs.Options{Servers: 2, StripeSize: 512, Backend: pfs.Disk},
		Tuning: tuning,
	})
}

// TestServeOpenWithTuningRoundTrip pins that every knob OpenWith
// accepts lands on the opened handle exactly (the knob-plumbing
// guarantee of the Options redesign), and that the legacy positional
// Open still works as a wrapper.
func TestServeOpenWithTuningRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arr")
	want := drxmp.Tuning{
		Parallelism:           3,
		CollectiveParallelism: 5,
		CBNodes:               2,
		WriteBehindBytes:      -1,
		CacheBytes:            1 << 16,
		ReadAheadBytes:        2048,
	}
	err := cluster.Run(2, func(c *cluster.Comm) error {
		f, err := optionsCreateDisk(c, path, drxmp.Tuning{})
		if err != nil {
			return err
		}
		full := drxmp.NewBox([]int{0, 0}, []int{32, 24})
		vals := make([]float64, full.Volume())
		for i := range vals {
			vals[i] = float64(i) * 1.25
		}
		if err := f.WriteSectionFloat64s(full, vals, drxmp.RowMajor); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}

		f, err = drxmp.OpenWith(c, path, drxmp.OpenOptions{
			FS:     pfs.Options{Servers: 2, StripeSize: 512},
			Tuning: want,
		})
		if err != nil {
			return err
		}
		defer f.Close()
		if got := f.Tuning(); got != want {
			return fmt.Errorf("Tuning() = %+v, want %+v", got, want)
		}
		// The resolved accessors must agree with the raw knobs too.
		if f.CBNodes() != want.CBNodes || f.WriteBehind() != want.WriteBehindBytes ||
			f.CacheBytes() != want.CacheBytes || f.ReadAhead() != want.ReadAheadBytes {
			return fmt.Errorf("resolved accessors diverge: cb=%d wb=%d cache=%d ra=%d",
				f.CBNodes(), f.WriteBehind(), f.CacheBytes(), f.ReadAhead())
		}
		got, err := f.ReadSectionFloat64s(full, drxmp.RowMajor)
		if err != nil {
			return err
		}
		for i := range vals {
			if got[i] != vals[i] {
				return fmt.Errorf("data mismatch at %d after OpenWith: %v != %v", i, got[i], vals[i])
			}
		}

		// Legacy positional Open still round-trips the data (with zero
		// tuning).
		if err := f.Close(); err != nil {
			return err
		}
		f, err = drxmp.Open(c, path, pfs.Options{Servers: 2, StripeSize: 512}, 0, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		if got := f.Tuning(); got != (drxmp.Tuning{}) {
			return fmt.Errorf("legacy Open applied tuning %+v", got)
		}
		buf := make([]byte, full.Volume()*8)
		if err := f.ReadSection(full, buf, drxmp.RowMajor); err != nil {
			return err
		}
		want2 := make([]byte, full.Volume()*8)
		f2, err := drxmp.OpenWith(c, path, drxmp.OpenOptions{FS: pfs.Options{Servers: 2, StripeSize: 512}})
		if err != nil {
			return err
		}
		defer f2.Close()
		if err := f2.ReadSection(full, want2, drxmp.RowMajor); err != nil {
			return err
		}
		if !bytes.Equal(buf, want2) {
			return fmt.Errorf("legacy Open and OpenWith read different bytes")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServeSetTuningValidation pins SetTuning's all-or-nothing
// behavior: a valid block applies every knob, an invalid one applies
// none and reports ErrBadOptions.
func TestServeSetTuningValidation(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "tuning", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{8, 8}, Bounds: []int{16, 16},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		want := drxmp.Tuning{
			Parallelism: -1, CollectiveParallelism: 4, CBNodes: 1,
			WriteBehindBytes: 4096, CacheBytes: 1 << 14, ReadAheadBytes: 512,
		}
		if err := f.SetTuning(want); err != nil {
			return err
		}
		if got := f.Tuning(); got != want {
			return fmt.Errorf("SetTuning applied %+v, want %+v", got, want)
		}
		bad := want
		bad.CacheBytes = -5
		err = f.SetTuning(bad)
		if !errors.Is(err, drxmp.ErrBadOptions) {
			return fmt.Errorf("SetTuning(bad) = %v, want ErrBadOptions", err)
		}
		if got := f.Tuning(); got != want {
			return fmt.Errorf("rejected SetTuning still mutated knobs: %+v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServeBadOptions pins the typed validation error across Create,
// OpenWith and the Tuning block.
func TestServeBadOptions(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		base := drxmp.Options{DType: drxmp.Float64, ChunkShape: []int{8}, Bounds: []int{32}}
		for name, opts := range map[string]drxmp.Options{
			"order": func() drxmp.Options { o := base; o.Order = drxmp.Order(9); return o }(),
			"cyclic": func() drxmp.Options {
				o := base
				o.CyclicBlock = -1
				return o
			}(),
			"cache": func() drxmp.Options {
				o := base
				o.Tuning = drxmp.Tuning{CacheBytes: -1}
				return o
			}(),
			"readahead": func() drxmp.Options {
				o := base
				o.Tuning = drxmp.Tuning{ReadAheadBytes: -1}
				return o
			}(),
		} {
			if _, err := drxmp.Create(c, "bad-"+name, opts); !errors.Is(err, drxmp.ErrBadOptions) {
				return fmt.Errorf("Create(%s) = %v, want ErrBadOptions", name, err)
			}
		}
		for name, opts := range map[string]drxmp.OpenOptions{
			"cyclic": {CyclicBlock: -2},
			"cache":  {Tuning: drxmp.Tuning{CacheBytes: -1}},
		} {
			if _, err := drxmp.OpenWith(c, "nope", opts); !errors.Is(err, drxmp.ErrBadOptions) {
				return fmt.Errorf("OpenWith(%s) = %v, want ErrBadOptions", name, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServeCreatePersistFailureAllRanks pins the partial-failure fix:
// when rank 0 cannot persist the metadata, EVERY rank's Create returns
// an error (previously the other ranks returned healthy handles on a
// store rank 0 had abandoned), and the store is released so the name
// can be reused.
func TestServeCreatePersistFailureAllRanks(t *testing.T) {
	const ranks = 3
	dir := t.TempDir()
	path := filepath.Join(dir, "broken")
	// Make the metadata path unwritable: a directory where the .xmd
	// file must go.
	if err := os.MkdirAll(path+".xmd", 0o755); err != nil {
		t.Fatal(err)
	}
	errs := make([]error, ranks)
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		f, err := optionsCreateDisk(c, path, drxmp.Tuning{})
		errs[c.Rank()] = err
		if err == nil {
			f.Close()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: Create returned a healthy handle despite rank 0's persist failure", r)
		}
	}
	// The failed create must not have leaked the store: creating at a
	// good path in the same directory still works on all ranks.
	good := filepath.Join(dir, "ok")
	err = cluster.Run(ranks, func(c *cluster.Comm) error {
		f, err := optionsCreateDisk(c, good, drxmp.Tuning{})
		if err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
