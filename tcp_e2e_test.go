package drxmp

import (
	"fmt"
	"testing"

	"drxmp/internal/cluster"
	"drxmp/internal/grid"
)

// TestTCPTransportEndToEnd runs the full parallel workflow — collective
// create, zone-partitioned collective write, extend along a non-primary
// dimension, collective re-write of the new segment, full verify — with
// every inter-rank message (metadata broadcast, collective I/O
// exchanges, barriers) crossing real loopback TCP sockets, the way the
// paper's DRX-MP traffic crosses the cluster interconnect. Only the
// parallel file system itself stays shared, as PVFS2 is shared storage.
func TestTCPTransportEndToEnd(t *testing.T) {
	const ranks = 4
	opts := Options{
		DType:      Float64,
		ChunkShape: []int{2, 3},
		Bounds:     []int{10, 12},
	}
	value := func(idx []int) float64 { return float64(1000*idx[0] + idx[1]) }

	err := cluster.RunTCP(ranks, func(c *cluster.Comm) error {
		f, err := Create(c, "tcp-e2e", opts)
		if err != nil {
			return err
		}
		defer f.Close()

		writeZone := func() error {
			boxes, err := f.MyZone()
			if err != nil {
				return err
			}
			for _, box := range boxes {
				vals := make([]float64, box.Volume())
				at := 0
				box.Iterate(grid.RowMajor, func(idx []int) bool {
					vals[at] = value(idx)
					at++
					return true
				})
				if err := f.WriteSection(box, encodeF64(vals), RowMajor); err != nil {
					return err
				}
			}
			return c.Barrier()
		}
		if err := writeZone(); err != nil {
			return err
		}

		// Grow dimension 1 (the non-append dimension for a row-major
		// file) and fill the new cells from their owners.
		if err := f.Extend(1, 5); err != nil {
			return err
		}
		boxes, err := f.MyZone()
		if err != nil {
			return err
		}
		for _, box := range boxes {
			vals := make([]float64, box.Volume())
			at := 0
			box.Iterate(grid.RowMajor, func(idx []int) bool {
				vals[at] = value(idx)
				at++
				return true
			})
			if err := f.WriteSection(box, encodeF64(vals), RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Every rank verifies the complete principal array, reading in
		// Fortran order to exercise on-the-fly transposition too.
		full := NewBox([]int{0, 0}, f.Bounds())
		got, err := f.ReadSectionFloat64s(full, ColMajor)
		if err != nil {
			return err
		}
		at := 0
		var bad error
		full.Iterate(grid.ColMajor, func(idx []int) bool {
			if got[at] != value(idx) {
				bad = fmt.Errorf("rank %d: (%v) = %v, want %v", c.Rank(), idx, got[at], value(idx))
				return false
			}
			at++
			return true
		})
		return bad
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPTransportCollectiveRead re-enacts the paper's Section IV
// 4-process collective zone read over sockets and confirms the zone
// contents match rank ownership.
func TestTCPTransportCollectiveRead(t *testing.T) {
	opts := Options{
		DType:      Float64,
		ChunkShape: []int{2, 3},
		Bounds:     []int{10, 10},
	}
	err := cluster.RunTCP(4, func(c *cluster.Comm) error {
		f, err := Create(c, "tcp-coll", opts)
		if err != nil {
			return err
		}
		defer f.Close()
		full := NewBox([]int{0, 0}, f.Bounds())
		if c.Rank() == 0 {
			vals := make([]float64, full.Volume())
			at := 0
			full.Iterate(grid.RowMajor, func(idx []int) bool {
				vals[at] = float64(at)
				at++
				return true
			})
			if err := f.WriteSection(full, encodeF64(vals), RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		boxes, err := f.MyZone()
		if err != nil {
			return err
		}
		for _, box := range boxes {
			got, err := f.ReadSectionFloat64s(box, RowMajor)
			if err != nil {
				return err
			}
			at := 0
			var bad error
			box.Iterate(grid.RowMajor, func(idx []int) bool {
				want := float64(idx[0]*10 + idx[1])
				if got[at] != want {
					bad = fmt.Errorf("rank %d zone (%v) = %v, want %v", c.Rank(), idx, got[at], want)
					return false
				}
				at++
				return true
			})
			if bad != nil {
				return bad
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
