// Root benchmark harness: one testing.B target per reproduced figure /
// experiment (DESIGN.md §4). Each benchmark drives the same code as
// cmd/drxbench, so `go test -bench=.` regenerates every table the
// harness prints; custom metrics carry the simulated I/O costs that
// wall-clock time alone cannot show.
package drxmp_test

import (
	"testing"
	"time"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/exp"
	"drxmp/internal/pfs"
	"drxmp/internal/report"
)

func scale(b *testing.B) exp.Scale {
	if testing.Short() {
		return exp.Quick
	}
	return exp.Quick // Full is available via cmd/drxbench -scale full
}

// run executes an experiment b.N times and sanity-checks row counts.
func run(b *testing.B, minRows int, fn func(exp.Scale) []*report.Table) []*report.Table {
	b.Helper()
	var tables []*report.Table
	for i := 0; i < b.N; i++ {
		tables = fn(scale(b))
	}
	if len(tables) == 0 || len(tables[0].Rows) < minRows {
		b.Fatalf("experiment produced too few rows: %+v", tables)
	}
	return tables
}

func BenchmarkFig1Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := exp.Fig1Space().MustMap([]int{4, 2}); got != 18 {
			b.Fatalf("F*(4,2) = %d", got)
		}
	}
}

func BenchmarkFig2Layouts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tables := exp.Fig2(); len(tables) != 4 {
			b.Fatalf("fig2 tables = %d", len(tables))
		}
	}
}

func BenchmarkFig3Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.Fig3Space()
		if got := s.MustMap([]int{4, 2, 2}); got != 56 {
			b.Fatalf("F*(4,2,2) = %d", got)
		}
	}
}

func BenchmarkE1ExtendVsReorg(b *testing.B) {
	run(b, 8, exp.E1ExtendCost)
}

func BenchmarkE2AccessOrder(b *testing.B) {
	tables := run(b, 4, exp.E2AccessOrder)
	reportSimTimes(b, tables[0], 4, 0)
}

func BenchmarkE3MapLatency(b *testing.B) {
	run(b, 5, exp.E3MapLatency)
}

func BenchmarkE4Scaling(b *testing.B) {
	tables := run(b, 5, exp.E4Scaling)
	reportSimTimes(b, tables[0], 3, 0)
}

func BenchmarkE5Collective(b *testing.B) {
	tables := run(b, 2, exp.E5Collective)
	reportSimTimes(b, tables[0], 3, 0)
}

func BenchmarkE6ChunkStripe(b *testing.B) {
	run(b, 3, exp.E6ChunkStripe)
}

func BenchmarkE7Formats(b *testing.B) {
	run(b, 4, exp.E7Formats)
}

func BenchmarkE8RMA(b *testing.B) {
	run(b, 3, exp.E8RMA)
}

func BenchmarkE9ParallelExtend(b *testing.B) {
	tables := run(b, 2, exp.E9ParallelExtend)
	if tables[0].Rows[1][3] != "0" {
		b.Fatalf("no-reorganization invariant violated: %v old bytes changed", tables[0].Rows[1][3])
	}
}

func BenchmarkE10Transpose(b *testing.B) {
	run(b, 2, exp.E10Transpose)
}

func BenchmarkE11LayoutAblation(b *testing.B) {
	tables := run(b, 4, exp.E11LayoutAblation)
	// The axial row must show zero waste, zero moves, zero refusals.
	ax := tables[0].Rows[0]
	if ax[4] != "0" || ax[5] != "0" || ax[6] != "0" {
		b.Fatalf("axial ablation row not clean: %v", ax)
	}
}

func BenchmarkE12MergeAblation(b *testing.B) {
	tables := run(b, 2, exp.E12MergeAblation)
	rows := tables[0].Rows
	if len(rows) != 2 || rows[0][1] == rows[1][1] {
		b.Fatalf("E12: merged and unmerged record counts indistinguishable: %v", rows)
	}
}

func BenchmarkE13SearchAblation(b *testing.B) {
	run(b, 2, exp.E13SearchAblation)
}

func BenchmarkE14CacheAblation(b *testing.B) {
	run(b, 2, exp.E14CacheAblation)
}

func BenchmarkE15TransportAblation(b *testing.B) {
	run(b, 1, exp.E15TransportAblation)
}

func BenchmarkE16ParallelIO(b *testing.B) {
	run(b, 3, exp.E16ParallelIO)
}

// sectionBench measures one rank's ReadSection/WriteSection wall-clock
// over an 8-server store that charges real service time, at a given
// parallelism — the tentpole's before/after benchmark. Throughput is
// meaningful (SetBytes); speedup = parallel MB/s over serial MB/s.
func sectionBench(b *testing.B, parallelism int, write bool) {
	const n, chunk = 256, 64
	cost := pfs.CostModel{RequestOverhead: 150 * time.Microsecond, ByteTime: 10 * time.Nanosecond, RealTime: true}
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "bench-sec", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{chunk, chunk}, Bounds: []int{n, n},
			FS:     pfs.Options{Servers: 8, StripeSize: 32 << 10, Cost: cost},
			Tuning: drxmp.Tuning{Parallelism: parallelism},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		full := drxmp.NewBox([]int{0, 0}, []int{n, n})
		buf := make([]byte, full.Volume()*8)
		if err := f.WriteSection(full, buf, drxmp.RowMajor); err != nil {
			return err
		}
		b.SetBytes(int64(len(buf)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if write {
				if err := f.WriteSection(full, buf, drxmp.RowMajor); err != nil {
					return err
				}
			} else if err := f.ReadSection(full, buf, drxmp.RowMajor); err != nil {
				return err
			}
		}
		b.StopTimer()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSectionRead(b *testing.B) {
	b.Run("serial", func(b *testing.B) { sectionBench(b, -1, false) })
	b.Run("par8", func(b *testing.B) { sectionBench(b, 8, false) })
}

func BenchmarkSectionWrite(b *testing.B) {
	b.Run("serial", func(b *testing.B) { sectionBench(b, -1, true) })
	b.Run("par8", func(b *testing.B) { sectionBench(b, 8, true) })
}

// reportSimTimes surfaces a table's simulated-time column as custom
// benchmark metrics (ns), keyed by the row's first column.
func reportSimTimes(b *testing.B, t *report.Table, col, _ int) {
	b.Helper()
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		if d, err := time.ParseDuration(row[col]); err == nil {
			b.ReportMetric(float64(d.Nanoseconds()), "simns_"+sanitize(row[0]))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
