package drx

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"drxmp/internal/grid"
	"drxmp/internal/pfs"
)

func memArray(t *testing.T, opts Options) *Array {
	t.Helper()
	a, err := Create("test", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func defaultOpts() Options {
	return Options{
		DType:      Float64,
		ChunkShape: []int{2, 3},
		Bounds:     []int{10, 10},
	}
}

func TestCreateValidation(t *testing.T) {
	bad := []Options{
		{},
		{DType: Float64},
		{DType: Float64, ChunkShape: []int{2}, Bounds: []int{0}},
		{DType: Float64, ChunkShape: []int{0}, Bounds: []int{4}},
		{DType: Float64, ChunkShape: []int{2, 2}, Bounds: []int{4}},
		{DType: Float64, ChunkShape: []int{2}, Bounds: []int{4}, Order: Order(9)},
	}
	for i, o := range bad {
		if _, err := Create("x", o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	a := memArray(t, defaultOpts())
	if err := a.Set([]int{3, 7}, 42.5); err != nil {
		t.Fatal(err)
	}
	got, err := a.At([]int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42.5 {
		t.Fatalf("At = %v", got)
	}
	// Unwritten cells read as zero.
	if v, err := a.At([]int{9, 9}); err != nil || v != 0 {
		t.Fatalf("unwritten cell = %v, %v", v, err)
	}
	// Out of bounds.
	if _, err := a.At([]int{10, 0}); err == nil {
		t.Error("out-of-bounds At accepted")
	}
	if err := a.Set([]int{0, 10}, 1); err == nil {
		t.Error("out-of-bounds Set accepted")
	}
	if _, err := a.At([]int{1}); err == nil {
		t.Error("rank-mismatched At accepted")
	}
}

func TestWriteReadBox(t *testing.T) {
	a := memArray(t, defaultOpts())
	box := NewBox([]int{2, 3}, []int{7, 9})
	vals := make([]float64, box.Volume())
	for i := range vals {
		vals[i] = float64(i) + 0.25
	}
	if err := a.WriteFloat64s(box, vals, RowMajor); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadFloat64s(box, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatal("row-major round trip mismatch")
	}
	// Element spot check across chunk boundaries.
	if v, _ := a.At([]int{2, 3}); v != 0.25 {
		t.Fatalf("corner = %v", v)
	}
	if v, _ := a.At([]int{6, 8}); v != float64(4*6+5)+0.25 {
		t.Fatalf("far corner = %v", v)
	}
}

// TestOnTheFlyTransposition is the paper's headline usability claim:
// write in C order, read the same box in Fortran order (and vice versa)
// with no out-of-core transposition step.
func TestOnTheFlyTransposition(t *testing.T) {
	a := memArray(t, defaultOpts())
	box := NewBox([]int{0, 0}, []int{4, 5})
	vals := make([]float64, box.Volume())
	for i := range vals {
		vals[i] = float64(i)
	}
	if err := a.WriteFloat64s(box, vals, RowMajor); err != nil {
		t.Fatal(err)
	}
	colVals, err := a.ReadFloat64s(box, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	// colVals[(i,j) in col-major] == vals[(i,j) in row-major].
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			if colVals[j*4+i] != vals[i*5+j] {
				t.Fatalf("transpose mismatch at (%d,%d): %v vs %v", i, j, colVals[j*4+i], vals[i*5+j])
			}
		}
	}
	// Write in Fortran order, read back in C order.
	box2 := NewBox([]int{5, 0}, []int{9, 4})
	if err := a.WriteFloat64s(box2, colVals[:box2.Volume()], ColMajor); err != nil {
		t.Fatal(err)
	}
	rowBack, err := a.ReadFloat64s(box2, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if rowBack[i*4+j] != colVals[j*4+i] {
				t.Fatalf("F-write/C-read mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// TestExtendPreservesData is the no-reorganization property end to end:
// grow every dimension repeatedly and verify old content never changes.
func TestExtendPreservesData(t *testing.T) {
	a := memArray(t, Options{
		DType:      Float64,
		ChunkShape: []int{2, 3, 2},
		Bounds:     []int{3, 4, 2},
	})
	rng := rand.New(rand.NewSource(1))
	type kv struct {
		idx []int
		v   float64
	}
	var written []kv
	writeSome := func() {
		b := a.Bounds()
		for i := 0; i < 20; i++ {
			idx := []int{rng.Intn(b[0]), rng.Intn(b[1]), rng.Intn(b[2])}
			v := rng.Float64()
			if err := a.Set(idx, v); err != nil {
				t.Fatal(err)
			}
			written = append(written, kv{idx, v})
		}
	}
	checkAll := func() {
		seen := map[string]float64{}
		for _, w := range written {
			seen[grid.Shape(w.idx).String()] = w.v
		}
		for _, w := range written {
			got, err := a.At(w.idx)
			if err != nil {
				t.Fatal(err)
			}
			if got != seen[grid.Shape(w.idx).String()] {
				t.Fatalf("value at %v changed after extension: %v", w.idx, got)
			}
		}
	}
	writeSome()
	for step := 0; step < 6; step++ {
		if err := a.Extend(step%3, 1+rng.Intn(4)); err != nil {
			t.Fatal(err)
		}
		checkAll()
		writeSome()
	}
	// New region reads zero.
	b := a.Bounds()
	if v, err := a.At([]int{b[0] - 1, b[1] - 1, b[2] - 1}); err != nil || v != 0 {
		t.Fatalf("new corner = %v, %v", v, err)
	}
}

func TestExtendValidation(t *testing.T) {
	a := memArray(t, defaultOpts())
	if err := a.Extend(-1, 1); err == nil {
		t.Error("bad dim accepted")
	}
	if err := a.Extend(0, 0); err == nil {
		t.Error("zero extension accepted")
	}
	if err := a.ExtendTo(0, 5); err != nil { // shrink request: no-op
		t.Fatal(err)
	}
	if got := a.Bounds(); got[0] != 10 {
		t.Fatalf("bounds shrank: %v", got)
	}
}

func TestReadWriteValidation(t *testing.T) {
	a := memArray(t, defaultOpts())
	if err := a.Read(NewBox([]int{0}, []int{1}), make([]byte, 8), RowMajor); err == nil {
		t.Error("rank mismatch accepted")
	}
	if err := a.Read(NewBox([]int{0, 0}, []int{11, 1}), make([]byte, 11*8), RowMajor); err == nil {
		t.Error("out-of-bounds box accepted")
	}
	if err := a.Read(NewBox([]int{0, 0}, []int{2, 2}), make([]byte, 8), RowMajor); err == nil {
		t.Error("short buffer accepted")
	}
	if err := a.WriteFloat64s(NewBox([]int{0, 0}, []int{2, 2}), []float64{1}, RowMajor); err == nil {
		t.Error("short values accepted")
	}
	// Empty box is a no-op.
	if err := a.Read(NewBox([]int{1, 1}, []int{1, 5}), nil, RowMajor); err != nil {
		t.Fatal(err)
	}
}

func TestPartialChunksAtEdge(t *testing.T) {
	// 10x10 with 3x4 chunks: both dimensions end mid-chunk.
	a := memArray(t, Options{DType: Float64, ChunkShape: []int{3, 4}, Bounds: []int{10, 10}})
	box := NewBox([]int{8, 7}, []int{10, 10})
	vals := []float64{1, 2, 3, 4, 5, 6}
	if err := a.WriteFloat64s(box, vals, RowMajor); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadFloat64s(box, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("edge box = %v", got)
	}
}

func TestInt32Array(t *testing.T) {
	a := memArray(t, Options{DType: Int32, ChunkShape: []int{4}, Bounds: []int{10}})
	if err := a.Set([]int{3}, -7); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.At([]int{3}); v != -7 {
		t.Fatalf("int32 round trip = %v", v)
	}
	if a.Meta().ChunkBytes() != 16 {
		t.Fatalf("chunk bytes = %d", a.Meta().ChunkBytes())
	}
}

func TestComplexArray(t *testing.T) {
	a := memArray(t, Options{DType: Complex128, ChunkShape: []int{2, 2}, Bounds: []int{4, 4}})
	if err := a.Set([]int{1, 1}, 3.5); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.At([]int{1, 1}); v != 3.5 {
		t.Fatalf("complex real part = %v", v)
	}
}

func TestColMajorChunkStorage(t *testing.T) {
	o := defaultOpts()
	o.Order = ColMajor
	a := memArray(t, o)
	box := NewBox([]int{0, 0}, []int{10, 10})
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	if err := a.WriteFloat64s(box, vals, RowMajor); err != nil {
		t.Fatal(err)
	}
	back, err := a.ReadFloat64s(box, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, vals) {
		t.Fatal("col-major-chunk round trip mismatch")
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arr")
	opts := defaultOpts()
	opts.FS = pfs.Options{Backend: pfs.Disk, Servers: 2, StripeSize: 64}
	a, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	box := NewBox([]int{0, 0}, []int{10, 10})
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	if err := a.WriteFloat64s(box, vals, RowMajor); err != nil {
		t.Fatal(err)
	}
	if err := a.Extend(1, 7); err != nil { // leave a non-trivial history
		t.Fatal(err)
	}
	if err := a.Set([]int{0, 16}, 99); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, pfs.Options{Servers: 2, StripeSize: 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Bounds(); got[0] != 10 || got[1] != 17 {
		t.Fatalf("reopened bounds = %v", got)
	}
	back, err := re.ReadFloat64s(box, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, vals) {
		t.Fatal("persisted data mismatch")
	}
	if v, _ := re.At([]int{0, 16}); v != 99 {
		t.Fatalf("extended cell = %v", v)
	}
	if err := Remove(path, pfs.Options{Servers: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, pfs.Options{Servers: 2, StripeSize: 64}, 0); err == nil {
		t.Fatal("open after remove succeeded")
	}
}

// TestSingleFileMode exercises the paper's Section V future-work
// layout: metadata embedded in a header region of the data file, no
// companion .xmd.
func TestSingleFileMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "single")
	opts := defaultOpts()
	opts.SingleFile = true
	opts.FS = pfs.Options{Backend: pfs.Disk, Servers: 2, StripeSize: 128}
	a, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	box := NewBox([]int{0, 0}, []int{10, 10})
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i) + 0.125
	}
	if err := a.WriteFloat64s(box, vals, RowMajor); err != nil {
		t.Fatal(err)
	}
	if err := a.Extend(0, 6); err != nil {
		t.Fatal(err)
	}
	if err := a.Set([]int{15, 9}, -3); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// No .xmd must exist.
	if _, err := os.Stat(path + ".xmd"); !os.IsNotExist(err) {
		t.Fatalf("single-file array left an .xmd: %v", err)
	}
	re, err := Open(path, pfs.Options{Servers: 2, StripeSize: 128}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Bounds(); got[0] != 16 || got[1] != 10 {
		t.Fatalf("reopened bounds = %v", got)
	}
	back, err := re.ReadFloat64s(box, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, vals) {
		t.Fatal("single-file data mismatch")
	}
	if v, _ := re.At([]int{15, 9}); v != -3 {
		t.Fatalf("extended cell = %v", v)
	}
}

func TestOpenMissingArray(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "nope"), pfs.Options{}, 0); err == nil {
		t.Fatal("open of missing array succeeded")
	}
}

func TestCacheEffectiveness(t *testing.T) {
	a := memArray(t, defaultOpts())
	if err := a.Set([]int{0, 0}, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := a.At([]int{0, i % 3}); err != nil { // same chunk
			t.Fatal(err)
		}
	}
	st := a.CacheStats()
	if st.Misses != 1 || st.Hits < 10 {
		t.Fatalf("cache stats %+v", st)
	}
}

// TestQuickBoxRoundTrip: random boxes, random orders, random chunking.
func TestQuickBoxRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := []int{rng.Intn(3) + 1, rng.Intn(4) + 1}
		nb := []int{rng.Intn(12) + 2, rng.Intn(12) + 2}
		a, err := Create("q", Options{DType: Float64, ChunkShape: cs, Bounds: nb})
		if err != nil {
			return false
		}
		defer a.Close()
		lo := []int{rng.Intn(nb[0]), rng.Intn(nb[1])}
		hi := []int{lo[0] + 1 + rng.Intn(nb[0]-lo[0]), lo[1] + 1 + rng.Intn(nb[1]-lo[1])}
		box := NewBox(lo, hi)
		vals := make([]float64, box.Volume())
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		wo := Order(rng.Intn(2))
		ro := Order(rng.Intn(2))
		if err := a.WriteFloat64s(box, vals, wo); err != nil {
			return false
		}
		got, err := a.ReadFloat64s(box, wo)
		if err != nil || !reflect.DeepEqual(got, vals) {
			return false
		}
		// Cross-order read must be the exact permutation.
		cross, err := a.ReadFloat64s(box, ro)
		if err != nil {
			return false
		}
		sh := box.Shape()
		ok := true
		grid.BoxOf(sh).Iterate(grid.RowMajor, func(idx []int) bool {
			vw := vals[grid.Offset(sh, idx, wo)]
			vr := cross[grid.Offset(sh, idx, ro)]
			if vw != vr {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// --- MemArray ---

func TestMemArrayBasics(t *testing.T) {
	m, err := NewMemArray(Float64, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set([]int{1, 2}, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.At([]int{1, 2}); v != 7 {
		t.Fatalf("At = %v", v)
	}
	if m.Rank() != 2 || m.Elems() != 6 {
		t.Fatalf("rank %d elems %d", m.Rank(), m.Elems())
	}
	if _, err := NewMemArray(Float64, []int{0}); err == nil {
		t.Error("zero bound accepted")
	}
	if _, err := NewMemArray(DType(0), []int{2}); err == nil {
		t.Error("invalid dtype accepted")
	}
}

// TestMemArrayStableOffsets: the defining property of the memory
// resident extendible array — element offsets never change on Extend.
func TestMemArrayStableOffsets(t *testing.T) {
	m, _ := NewMemArray(Float64, []int{2, 2})
	type rec struct {
		idx []int
		off int64
	}
	var recs []rec
	snapshot := func() {
		b := m.Bounds()
		for i := 0; i < b[0]; i++ {
			for j := 0; j < b[1]; j++ {
				off, err := m.Offset([]int{i, j})
				if err != nil {
					t.Fatal(err)
				}
				recs = append(recs, rec{[]int{i, j}, off})
			}
		}
	}
	snapshot()
	rng := rand.New(rand.NewSource(2))
	for step := 0; step < 8; step++ {
		if err := m.Extend(rng.Intn(2), 1+rng.Intn(2)); err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			off, err := m.Offset(r.idx)
			if err != nil {
				t.Fatal(err)
			}
			if off != r.off {
				t.Fatalf("offset of %v moved %d -> %d", r.idx, r.off, off)
			}
		}
		recs = recs[:0]
		snapshot()
	}
}

func TestMemArrayValuesSurviveExtend(t *testing.T) {
	m, _ := NewMemArray(Float64, []int{2, 2})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if err := m.Set([]int{i, j}, float64(10*i+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Extend(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Extend(0, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if v, _ := m.At([]int{i, j}); v != float64(10*i+j) {
				t.Fatalf("(%d,%d) = %v", i, j, v)
			}
		}
	}
	// New cells are zero.
	if v, _ := m.At([]int{3, 4}); v != 0 {
		t.Fatalf("new cell = %v", v)
	}
}

func TestMemArrayToDense(t *testing.T) {
	m, _ := NewMemArray(Float64, []int{2, 2})
	_ = m.Extend(1, 1) // bounds 2x3, non-trivial layout
	want := map[[2]int]float64{}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			v := float64(i*3 + j + 1)
			if err := m.Set([]int{i, j}, v); err != nil {
				t.Fatal(err)
			}
			want[[2]int{i, j}] = v
		}
	}
	dense := m.ToDense(RowMajor)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if dense[i*3+j] != want[[2]int{i, j}] {
				t.Fatalf("dense C (%d,%d) = %v", i, j, dense[i*3+j])
			}
		}
	}
	denseF := m.ToDense(ColMajor)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if denseF[j*2+i] != want[[2]int{i, j}] {
				t.Fatalf("dense F (%d,%d) = %v", i, j, denseF[j*2+i])
			}
		}
	}
}

func BenchmarkSetGet(b *testing.B) {
	a, _ := Create("b", Options{DType: Float64, ChunkShape: []int{8, 8}, Bounds: []int{64, 64}})
	defer a.Close()
	idx := []int{13, 57}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := a.Set(idx, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := a.At(idx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBoxAligned(b *testing.B) {
	a, _ := Create("b", Options{DType: Float64, ChunkShape: []int{16, 16}, Bounds: []int{128, 128}})
	defer a.Close()
	box := NewBox([]int{16, 16}, []int{112, 112})
	buf := make([]byte, box.Volume()*8)
	b.SetBytes(box.Volume() * 8)
	for i := 0; i < b.N; i++ {
		if err := a.Read(box, buf, RowMajor); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBoxTransposed(b *testing.B) {
	a, _ := Create("b", Options{DType: Float64, ChunkShape: []int{16, 16}, Bounds: []int{128, 128}})
	defer a.Close()
	box := NewBox([]int{16, 16}, []int{112, 112})
	buf := make([]byte, box.Volume()*8)
	b.SetBytes(box.Volume() * 8)
	for i := 0; i < b.N; i++ {
		if err := a.Read(box, buf, ColMajor); err != nil {
			b.Fatal(err)
		}
	}
}
