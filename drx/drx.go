// Package drx is the serial Disk Resident Extendible array library of
// the paper: out-of-core dense k-dimensional arrays stored by chunks
// whose linear addresses come from the axial-vector mapping function F*
// (package internal/core), extendible along any dimension without
// reorganizing previously written data.
//
// An array named "xyz" is a pair of files, exactly as in the paper's
// Section IV: "xyz.xmd" holds the metadata (axial vectors, chunk shape,
// bounds, data type) and "xyz.xta" holds the chunk data. Chunk I/O goes
// through an LRU buffer pool (internal/mpool, the BerkeleyDB-Mpool
// stand-in), and sub-arrays can be read into memory in either C or
// Fortran order regardless of how chunks are stored — the "on the fly"
// transposition the paper advertises.
//
// The parallel counterpart is the root package drxmp.
package drx

import (
	"fmt"
	"os"
	"path/filepath"

	"drxmp/internal/dtype"
	"drxmp/internal/grid"
	"drxmp/internal/meta"
	"drxmp/internal/mpool"
	"drxmp/internal/par"
	"drxmp/internal/pfs"
)

// DType re-exports the element types.
type DType = dtype.T

// Element types supported by DRX arrays.
const (
	Int32      = dtype.Int32
	Int64      = dtype.Int64
	Float32    = dtype.Float32
	Float64    = dtype.Float64
	Complex64  = dtype.Complex64
	Complex128 = dtype.Complex128
)

// Order re-exports the memory orders.
type Order = grid.Order

// Memory orders for chunks and in-memory sub-arrays.
const (
	RowMajor = grid.RowMajor // C order
	ColMajor = grid.ColMajor // Fortran order
)

// Box re-exports the half-open sub-array region type.
type Box = grid.Box

// NewBox builds a half-open box [lo, hi).
func NewBox(lo, hi []int) Box { return grid.NewBox(lo, hi) }

// Options configures Create.
type Options struct {
	// DType is the element type (required).
	DType DType
	// ChunkShape is the chunk shape in elements (required, positive).
	ChunkShape []int
	// Bounds is the initial element bounds (required, positive).
	Bounds []int
	// Order is the element order within chunks (default RowMajor).
	Order Order
	// CacheChunks is the buffer-pool capacity in chunks (default 64).
	CacheChunks int
	// FS configures the backing store. Zero value = single in-memory
	// "server" (tests, examples); set Backend: pfs.Disk to persist, or
	// more Servers/StripeSize to model a striped parallel file system.
	FS pfs.Options
	// Parallelism bounds the worker goroutines a single Read/Write call
	// uses to move chunks through the buffer pool: 0 selects GOMAXPROCS,
	// negative forces the serial path, larger values overlap more chunk
	// I/O (useful when the backing store has real latency). The workers
	// also read ahead: the next chunks fault into the pool while the
	// current chunks scatter/gather.
	Parallelism int
	// SingleFile embeds the metadata in a reserved header region of the
	// data file instead of a separate .xmd — the layout the paper's
	// Section V leaves as future work. Chunk data starts at
	// HeaderRegion; Open auto-detects the mode.
	SingleFile bool
}

// HeaderRegion is the reserved metadata header size of single-file
// arrays. Axial vectors grow by one record per interrupted expansion,
// so even 10⁴ expansions fit comfortably.
const HeaderRegion int64 = 64 << 10

// Array is an open extendible array. Not safe for concurrent use; the
// parallel library drxmp provides multi-process access.
type Array struct {
	name       string
	m          *meta.Meta
	fs         *pfs.FS
	pool       *mpool.Pool
	dirt       bool  // metadata changed since last Sync
	fsIsDisk   bool  // whether metadata must be persisted on Sync
	singleFile bool  // metadata embedded in the data file header
	dataOff    int64 // byte offset of chunk 0 in the data file
	par        int   // Parallelism knob (see Options.Parallelism)

	ci, wi []int // scratch
}

// chunkBacking adapts the striped file to the buffer pool: page id q is
// the chunk's linear address F*(chunk index).
type chunkBacking struct {
	fs         *pfs.FS
	chunkBytes int64
	base       int64
}

func (b chunkBacking) ReadPage(id int64, buf []byte) error {
	_, err := b.fs.ReadAt(buf, b.base+id*b.chunkBytes)
	return err
}

func (b chunkBacking) WritePage(id int64, buf []byte) error {
	_, err := b.fs.WriteAt(buf, b.base+id*b.chunkBytes)
	return err
}

// Create makes a new extendible array named by path (files path+".xmd"
// and path+".xta[.sN]" for disk backends).
func Create(path string, opts Options) (*Array, error) {
	if opts.Order != RowMajor && opts.Order != ColMajor {
		return nil, fmt.Errorf("drx: invalid order %v", opts.Order)
	}
	m, err := meta.New(opts.DType, opts.Order, opts.ChunkShape, opts.Bounds)
	if err != nil {
		return nil, err
	}
	fsOpts := opts.FS
	if fsOpts.Backend == pfs.Disk && fsOpts.Dir == "" {
		fsOpts.Dir = filepath.Dir(path)
	}
	fs, err := pfs.Create(xtaName(path), fsOpts)
	if err != nil {
		return nil, err
	}
	var dataOff int64
	if opts.SingleFile {
		dataOff = HeaderRegion
	}
	a, err := newArray(path, m, fs, opts.CacheChunks, dataOff)
	if err != nil {
		fs.Close()
		return nil, err
	}
	a.par = opts.Parallelism
	a.singleFile = opts.SingleFile
	a.fsIsDisk = fsOpts.Backend == pfs.Disk
	a.dirt = true
	if err := a.Sync(); err != nil {
		fs.Close()
		return nil, err
	}
	return a, nil
}

// Open opens an existing disk-backed array. fsOpts must carry the same
// Servers/StripeSize geometry used at Create (Backend and Dir default
// to Disk and the path's directory). cacheChunks <= 0 selects the
// default cache size. Single-file arrays (no .xmd beside the data) are
// detected automatically.
func Open(path string, fsOpts pfs.Options, cacheChunks int) (*Array, error) {
	fsOpts.Backend = pfs.Disk
	if fsOpts.Dir == "" {
		fsOpts.Dir = filepath.Dir(path)
	}
	blob, err := os.ReadFile(xmdName(path))
	singleFile := false
	if os.IsNotExist(err) {
		singleFile = true
	} else if err != nil {
		return nil, fmt.Errorf("drx: open metadata: %w", err)
	}
	fs, err := pfs.Open(xtaName(path), fsOpts)
	if err != nil {
		return nil, err
	}
	if singleFile {
		blob, err = readHeaderBlob(fs)
		if err != nil {
			fs.Close()
			return nil, err
		}
	}
	m, err := meta.Decode(blob)
	if err != nil {
		fs.Close()
		return nil, err
	}
	var dataOff int64
	if singleFile {
		dataOff = HeaderRegion
	}
	a, err := newArray(path, m, fs, cacheChunks, dataOff)
	if err != nil {
		fs.Close()
		return nil, err
	}
	a.singleFile = singleFile
	a.fsIsDisk = true
	return a, nil
}

// readHeaderBlob extracts the metadata blob from a single-file array's
// header region (8-byte little-endian length, then the .xmd bytes).
func readHeaderBlob(fs *pfs.FS) ([]byte, error) {
	hdr := make([]byte, 8)
	if _, err := fs.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	var n int64
	for i := 7; i >= 0; i-- {
		n = n<<8 | int64(hdr[i])
	}
	if n <= 0 || n > HeaderRegion-8 {
		return nil, fmt.Errorf("drx: single-file header length %d invalid (missing header?)", n)
	}
	blob := make([]byte, n)
	if _, err := fs.ReadAt(blob, 8); err != nil {
		return nil, err
	}
	return blob, nil
}

// Remove deletes the files of a disk-backed array.
func Remove(path string, fsOpts pfs.Options) error {
	fsOpts.Backend = pfs.Disk
	if fsOpts.Dir == "" {
		fsOpts.Dir = filepath.Dir(path)
	}
	err1 := os.Remove(xmdName(path))
	err2 := pfs.Remove(xtaName(path), fsOpts)
	if err1 != nil && !os.IsNotExist(err1) {
		return err1
	}
	return err2
}

func xmdName(path string) string { return path + ".xmd" }
func xtaName(path string) string { return filepath.Base(path) + ".xta" }

func newArray(path string, m *meta.Meta, fs *pfs.FS, cacheChunks int, dataOff int64) (*Array, error) {
	if cacheChunks <= 0 {
		cacheChunks = 64
	}
	pool, err := mpool.New(int(m.ChunkBytes()), cacheChunks,
		chunkBacking{fs: fs, chunkBytes: m.ChunkBytes(), base: dataOff})
	if err != nil {
		return nil, err
	}
	return &Array{
		name:    path,
		m:       m,
		fs:      fs,
		pool:    pool,
		dataOff: dataOff,
		ci:      make([]int, m.Rank()),
		wi:      make([]int, m.Rank()),
	}, nil
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return a.m.Rank() }

// Bounds returns the current element bounds.
func (a *Array) Bounds() []int { return a.m.ElemBounds.Clone() }

// ChunkShape returns the chunk shape.
func (a *Array) ChunkShape() []int { return a.m.ChunkShape.Clone() }

// DType returns the element type.
func (a *Array) DType() DType { return a.m.DType }

// Order returns the within-chunk element order.
func (a *Array) Order() Order { return a.m.MemOrder }

// Chunks returns the number of allocated chunks.
func (a *Array) Chunks() int64 { return a.m.Space.Total() }

// Meta exposes the metadata (read-only by convention; used by drxdump
// and the benchmark harness).
func (a *Array) Meta() *meta.Meta { return a.m }

// FS exposes the backing store (I/O statistics in benchmarks).
func (a *Array) FS() *pfs.FS { return a.fs }

// CacheStats returns the chunk-cache counters.
func (a *Array) CacheStats() mpool.Stats { return a.pool.Stats() }

// SetParallelism adjusts the chunk-transfer parallelism knob after open
// (same semantics as Options.Parallelism).
func (a *Array) SetParallelism(n int) { a.par = n }

// Parallelism returns the resolved worker bound for Read/Write calls,
// additionally capped by the pool's safe concurrency (each worker pins
// one page and prefetches ahead; the pool must fit both however the
// page ids hash). Raise CacheChunks to allow more workers.
func (a *Array) Parallelism() int {
	n := par.Resolve(a.par)
	if c := a.pool.SafeConcurrency(); n > c {
		n = c
	}
	return n
}

// Extend grows dimension dim by `by` elements. Existing data never
// moves; new chunks are appended to the file as needed and materialize
// lazily (zero-filled) on first access.
func (a *Array) Extend(dim, by int) error {
	if by < 1 {
		return fmt.Errorf("drx: extend by %d", by)
	}
	if dim < 0 || dim >= a.Rank() {
		return fmt.Errorf("drx: dimension %d out of range", dim)
	}
	return a.ExtendTo(dim, a.m.ElemBounds[dim]+by)
}

// ExtendTo grows dimension dim to at least newBound elements.
func (a *Array) ExtendTo(dim, newBound int) error {
	if dim < 0 || dim >= a.Rank() {
		return fmt.Errorf("drx: dimension %d out of range", dim)
	}
	if err := a.m.ExtendElems(dim, newBound); err != nil {
		return err
	}
	a.dirt = true
	// Pre-size the file so holes read as zeros on any backend.
	return a.fs.Truncate(a.dataOff + a.m.FileBytes())
}

// Sync flushes dirty cached chunks and persists the metadata: to the
// companion .xmd, or into the header region for single-file arrays
// (in-memory arrays keep metadata in RAM).
func (a *Array) Sync() error {
	if err := a.pool.Flush(); err != nil {
		return err
	}
	if a.dirt {
		switch {
		case a.singleFile:
			blob := a.m.Encode()
			if int64(len(blob)) > HeaderRegion-8 {
				return fmt.Errorf("drx: metadata (%d bytes) exceeds the single-file header region", len(blob))
			}
			hdr := make([]byte, 8)
			n := int64(len(blob))
			for i := 0; i < 8; i++ {
				hdr[i] = byte(n >> (8 * i))
			}
			if _, err := a.fs.WriteAt(hdr, 0); err != nil {
				return err
			}
			if _, err := a.fs.WriteAt(blob, 8); err != nil {
				return err
			}
		case a.diskBacked():
			if err := os.WriteFile(xmdName(a.name), a.m.Encode(), 0o644); err != nil {
				return err
			}
		}
		a.dirt = false
	}
	return nil
}

func (a *Array) diskBacked() bool { return a.fsIsDisk }

// Close flushes and releases resources.
func (a *Array) Close() error {
	if err := a.Sync(); err != nil {
		return err
	}
	return a.fs.Close()
}

// At reads a single element as float64 (real part for complex arrays).
func (a *Array) At(idx []int) (float64, error) {
	q, within, err := a.m.Locate(idx, a.ci, a.wi)
	if err != nil {
		return 0, err
	}
	buf, err := a.pool.Get(q)
	if err != nil {
		return 0, err
	}
	defer a.pool.Put(q)
	return dtype.Float64At(a.m.DType, buf[within*int64(a.m.DType.Size()):]), nil
}

// Set writes a single element from a float64.
func (a *Array) Set(idx []int, v float64) error {
	q, within, err := a.m.Locate(idx, a.ci, a.wi)
	if err != nil {
		return err
	}
	buf, err := a.pool.Get(q)
	if err != nil {
		return err
	}
	defer a.pool.Put(q)
	dtype.PutFloat64(a.m.DType, buf[within*int64(a.m.DType.Size()):], v)
	return a.pool.MarkDirty(q)
}

// Read copies the sub-array `box` into dst, laid out densely in the
// requested memory order. dst must have box.Volume()*elemSize bytes.
// This is the serial DRXMP_Read: chunks are fetched through the cache
// and elements placed according to the requested order — no out-of-core
// transposition ever happens.
func (a *Array) Read(box Box, dst []byte, order Order) error {
	return a.copyBox(box, dst, order, false)
}

// Write copies src (densely laid out in the given memory order over
// `box`) into the array. The box must lie within the current bounds
// (call Extend first to grow).
func (a *Array) Write(box Box, src []byte, order Order) error {
	return a.copyBox(box, src, order, true)
}

// ReadFloat64s is Read with float64 conversion (convenience).
func (a *Array) ReadFloat64s(box Box, order Order) ([]float64, error) {
	buf := make([]byte, box.Volume()*int64(a.m.DType.Size()))
	if err := a.Read(box, buf, order); err != nil {
		return nil, err
	}
	return dtype.DecodeFloat64s(a.m.DType, buf, int(box.Volume())), nil
}

// WriteFloat64s is Write from float64 values (convenience).
func (a *Array) WriteFloat64s(box Box, vals []float64, order Order) error {
	if int64(len(vals)) != box.Volume() {
		return fmt.Errorf("drx: %d values for box of %d elements", len(vals), box.Volume())
	}
	return a.Write(box, dtype.EncodeFloat64s(a.m.DType, vals), order)
}

// chunkTask is one chunk's share of a Read/Write call: its linear
// address plus its intersection with the requested box. Tasks touch
// disjoint chunk pages and disjoint user-buffer elements, so they can
// proceed on concurrent workers.
type chunkTask struct {
	q          int64
	cbox, ibox Box
}

// copyBox moves data between the chunk store and a dense user buffer.
// The chunk list is dispatched across Parallelism() workers (each
// pinning one page at a time through the sharded pool); workers also
// prefetch the chunks `workers` ahead of their own, so the next pages
// fault in while the current pages scatter/gather.
func (a *Array) copyBox(box Box, user []byte, order Order, write bool) error {
	if box.Rank() != a.Rank() {
		return fmt.Errorf("drx: box rank %d != array rank %d", box.Rank(), a.Rank())
	}
	if box.Empty() {
		return nil
	}
	if !grid.BoxOf(a.m.ElemBounds).ContainsBox(box) {
		return fmt.Errorf("drx: box %v outside bounds %v", box, a.m.ElemBounds)
	}
	es := int64(a.m.DType.Size())
	need := box.Volume() * es
	if int64(len(user)) < need {
		return fmt.Errorf("drx: buffer of %d bytes for %d-byte box", len(user), need)
	}
	boxShape := box.Shape()
	userStrides := grid.Strides(boxShape, order)
	chunkStrides := grid.Strides(a.m.ChunkShape, a.m.MemOrder)

	var tasks []chunkTask
	var outerErr error
	cover := grid.ChunkCover(box, a.m.ChunkShape)
	cover.Iterate(grid.RowMajor, func(cidx []int) bool {
		q, err := a.m.Space.Map(cidx)
		if err != nil {
			outerErr = err
			return false
		}
		cbox := grid.ChunkBox(cidx, a.m.ChunkShape)
		ibox := cbox.Intersect(box)
		if ibox.Empty() {
			return true
		}
		tasks = append(tasks, chunkTask{q: q, cbox: cbox, ibox: ibox})
		return true
	})
	if outerErr != nil {
		return outerErr
	}
	workers := a.Parallelism()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	return par.Do(workers, len(tasks), func(i int) error {
		if workers > 1 {
			// Read-ahead: hint the chunk this worker would reach next.
			if j := i + workers; j < len(tasks) {
				if t := &tasks[j]; !(write && t.ibox.Equal(t.cbox)) {
					a.pool.Prefetch(t.q)
				}
			}
		}
		return a.copyChunk(&tasks[i], box, user, order, userStrides, chunkStrides, es, write)
	})
}

// copyChunk moves one chunk's intersection between its pooled page and
// the user buffer.
func (a *Array) copyChunk(t *chunkTask, box Box, user []byte, order Order, userStrides, chunkStrides []int64, es int64, write bool) error {
	var page []byte
	var err error
	if write && t.ibox.Equal(t.cbox) {
		// Whole-chunk overwrite: skip the read fault.
		page, err = a.pool.GetZero(t.q)
	} else {
		page, err = a.pool.Get(t.q)
	}
	if err != nil {
		return err
	}
	defer a.pool.Put(t.q)
	if write {
		if err := a.pool.MarkDirty(t.q); err != nil {
			return err
		}
	}

	// Fast path: same order on both sides — copy contiguous runs of
	// the chunk's inner dimension.
	if order == a.m.MemOrder {
		t.ibox.Rows(a.m.MemOrder, func(start []int, n int) bool {
			var chunkOff, userOff int64
			for d := range start {
				chunkOff += int64(start[d]-t.cbox.Lo[d]) * chunkStrides[d]
				userOff += int64(start[d]-box.Lo[d]) * userStrides[d]
			}
			cp, up := page[chunkOff*es:(chunkOff+int64(n))*es], user[userOff*es:(userOff+int64(n))*es]
			if write {
				copy(cp, up)
			} else {
				copy(up, cp)
			}
			return true
		})
		return nil
	}
	// Transposing path: element-wise placement (the on-the-fly
	// transposition of Section II-A).
	t.ibox.Iterate(a.m.MemOrder, func(idx []int) bool {
		var chunkOff, userOff int64
		for d := range idx {
			chunkOff += int64(idx[d]-t.cbox.Lo[d]) * chunkStrides[d]
			userOff += int64(idx[d]-box.Lo[d]) * userStrides[d]
		}
		cp, up := page[chunkOff*es:(chunkOff+1)*es], user[userOff*es:(userOff+1)*es]
		if write {
			copy(cp, up)
		} else {
			copy(up, cp)
		}
		return true
	})
	return nil
}
