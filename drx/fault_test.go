package drx

import (
	"strings"
	"testing"

	"drxmp/internal/pfs"
)

// faultArray creates a tiny in-memory array with a small chunk cache so
// injected storage faults are not masked by cache hits.
func faultArray(t *testing.T) *Array {
	t.Helper()
	a, err := Create("fault", Options{
		DType:       Float64,
		ChunkShape:  []int{2, 2},
		Bounds:      []int{8, 8},
		CacheChunks: 2,
		FS:          pfs.Options{Servers: 2, StripeSize: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func fill(t *testing.T, a *Array) {
	t.Helper()
	box := NewBox([]int{0, 0}, a.Bounds())
	vals := make([]float64, box.Volume())
	for i := range vals {
		vals[i] = float64(i)
	}
	if err := a.WriteFloat64s(box, vals, RowMajor); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultSurfacesOnRead(t *testing.T) {
	a := faultArray(t)
	fill(t, a)
	a.FS().SetInjector(&pfs.FaultPoint{Server: pfs.AnyServer, Op: pfs.FaultReads, Permanent: true})
	box := NewBox([]int{0, 0}, a.Bounds())
	_, err := a.ReadFloat64s(box, RowMajor)
	if err == nil || !strings.Contains(err.Error(), "injected read fault") {
		t.Fatalf("read err = %v", err)
	}
	// Recovery: clear the fault and the same read succeeds.
	a.FS().SetInjector(nil)
	got, err := a.ReadFloat64s(box, RowMajor)
	if err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("element %d = %v after recovery", i, v)
		}
	}
}

func TestFaultSurfacesOnWriteOrSync(t *testing.T) {
	a := faultArray(t)
	fill(t, a)
	a.FS().SetInjector(&pfs.FaultPoint{Server: pfs.AnyServer, Op: pfs.FaultWrites, Permanent: true})
	box := NewBox([]int{0, 0}, []int{4, 4})
	vals := make([]float64, box.Volume())
	err := a.WriteFloat64s(box, vals, RowMajor)
	if err == nil {
		// Write-back pool: the failure may be deferred to flush time,
		// but it must not be silently dropped.
		err = a.Sync()
	}
	if err == nil {
		t.Fatal("write fault vanished: neither Write nor Sync reported it")
	}
	// The library stays usable once the fault clears.
	a.FS().SetInjector(nil)
	if err := a.WriteFloat64s(box, vals, RowMajor); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
}

func TestFaultDuringExtendDoesNotCorruptMetadata(t *testing.T) {
	a := faultArray(t)
	fill(t, a)
	before := a.Bounds()
	chunksBefore := a.Chunks()
	a.FS().SetInjector(&pfs.FaultPoint{Server: pfs.AnyServer, Op: pfs.FaultWrites, Permanent: true})
	if err := a.Extend(1, 4); err != nil {
		// Extend may touch storage (pre-truncate); failure must leave
		// the logical bounds unchanged.
		if got := a.Bounds(); got[0] != before[0] || got[1] != before[1] {
			t.Fatalf("failed extend changed bounds: %v -> %v", before, got)
		}
		if a.Chunks() != chunksBefore {
			t.Fatalf("failed extend changed chunk count: %d -> %d", chunksBefore, a.Chunks())
		}
		return
	}
	// In-memory pre-extension may legitimately succeed without I/O; the
	// metadata must then be consistent and data intact.
	a.FS().SetInjector(nil)
	box := NewBox([]int{0, 0}, before)
	got, err := a.ReadFloat64s(box, RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("pre-extend element %d = %v", i, v)
		}
	}
}

func TestTransientFaultRetrySucceeds(t *testing.T) {
	a := faultArray(t)
	fill(t, a)
	// One transient read failure: first victim request fails, retry
	// succeeds — the model of a glitching I/O server.
	a.FS().SetInjector(&pfs.FaultPoint{Server: 0, Op: pfs.FaultReads})
	box := NewBox([]int{0, 0}, a.Bounds())
	if _, err := a.ReadFloat64s(box, RowMajor); err == nil {
		t.Fatal("transient fault missed (cache too large?)")
	}
	got, err := a.ReadFloat64s(box, RowMajor)
	if err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("element %d = %v after retry", i, v)
		}
	}
}
