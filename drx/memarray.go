package drx

import (
	"fmt"

	"drxmp/internal/core"
	"drxmp/internal/dtype"
	"drxmp/internal/grid"
)

// MemArray is a memory-resident extendible array: the same axial-vector
// mapping applied at element granularity to a growable in-memory buffer.
// The paper's serial DRX supports memory arrays "maintained as either
// conventional arrays or memory resident extendible arrays"; MemArray is
// the latter. Extending never moves existing elements within the buffer
// (the buffer itself may be reallocated, but element offsets are
// stable), so interior pointers-by-index remain valid across growth.
type MemArray struct {
	dt    dtype.T
	space *core.Space
	data  []byte
}

// NewMemArray allocates a memory-resident extendible array with the
// given initial element bounds.
func NewMemArray(dt DType, bounds []int) (*MemArray, error) {
	if !dt.Valid() {
		return nil, fmt.Errorf("drx: invalid dtype %v", dt)
	}
	s, err := core.NewSpace(bounds)
	if err != nil {
		return nil, err
	}
	return &MemArray{
		dt:    dt,
		space: s,
		data:  make([]byte, s.Total()*int64(dt.Size())),
	}, nil
}

// Rank returns the number of dimensions.
func (m *MemArray) Rank() int { return m.space.Rank() }

// Bounds returns the current element bounds.
func (m *MemArray) Bounds() []int { return m.space.Bounds() }

// Elems returns the number of allocated elements.
func (m *MemArray) Elems() int64 { return m.space.Total() }

// DType returns the element type.
func (m *MemArray) DType() DType { return m.dt }

// Extend grows dimension dim by `by` element indices. Offsets of
// existing elements are unchanged.
func (m *MemArray) Extend(dim, by int) error {
	if err := m.space.Extend(dim, by); err != nil {
		return err
	}
	need := m.space.Total() * int64(m.dt.Size())
	if need > int64(len(m.data)) {
		grown := make([]byte, need)
		copy(grown, m.data)
		m.data = grown
	}
	return nil
}

// At returns the element at idx as float64.
func (m *MemArray) At(idx []int) (float64, error) {
	q, err := m.space.Map(idx)
	if err != nil {
		return 0, err
	}
	return dtype.Float64At(m.dt, m.data[q*int64(m.dt.Size()):]), nil
}

// Set stores v at idx.
func (m *MemArray) Set(idx []int, v float64) error {
	q, err := m.space.Map(idx)
	if err != nil {
		return err
	}
	dtype.PutFloat64(m.dt, m.data[q*int64(m.dt.Size()):], v)
	return nil
}

// Offset returns the stable linear element offset of idx (F* at element
// granularity) — exposed so tests can assert the no-move property.
func (m *MemArray) Offset(idx []int) (int64, error) { return m.space.Map(idx) }

// ToDense copies the array into a dense buffer of the given order
// (a conventional array snapshot).
func (m *MemArray) ToDense(order Order) []float64 {
	bounds := grid.Shape(m.space.Bounds())
	out := make([]float64, bounds.Volume())
	strides := grid.Strides(bounds, order)
	grid.BoxOf(bounds).Iterate(grid.RowMajor, func(idx []int) bool {
		var off int64
		for d, i := range idx {
			off += int64(i) * strides[d]
		}
		q := m.space.MustMap(idx)
		out[off] = dtype.Float64At(m.dt, m.data[q*int64(m.dt.Size()):])
		return true
	})
	return out
}
