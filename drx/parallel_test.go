package drx

import (
	"bytes"
	"math/rand"
	"testing"

	"drxmp/internal/pfs"
)

// TestParallelSerialReadWriteIdentical runs the same random workload
// through a serial array and a parallel one (tiny cache, so eviction
// and write-back fire constantly under concurrency) and checks every
// read agrees, in both orders. The parallel array must also report
// prefetch activity — proof the read-ahead path actually ran.
func TestParallelSerialReadWriteIdentical(t *testing.T) {
	const n = 90
	mk := func(name string, parallelism, cache int) *Array {
		a, err := Create(name, Options{
			DType: Float64, ChunkShape: []int{8, 8}, Bounds: []int{n, n},
			CacheChunks: cache, Parallelism: parallelism,
			FS: pfs.Options{Servers: 4, StripeSize: 1 << 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	ser := mk("pr-ser", -1, 64)
	defer ser.Close()
	par := mk("pr-par", 8, 64)
	defer par.Close()
	if got := par.Parallelism(); got < 2 {
		t.Fatalf("parallel array resolved to %d workers", got)
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		lo := []int{rng.Intn(n), rng.Intn(n)}
		hi := []int{lo[0] + 1 + rng.Intn(n-lo[0]), lo[1] + 1 + rng.Intn(n-lo[1])}
		box := NewBox(lo, hi)
		order := RowMajor
		if trial%3 == 1 {
			order = ColMajor
		}
		if trial%2 == 0 {
			data := make([]byte, box.Volume()*8)
			rng.Read(data)
			if err := ser.Write(box, data, order); err != nil {
				t.Fatal(err)
			}
			if err := par.Write(box, data, order); err != nil {
				t.Fatal(err)
			}
		} else {
			want := make([]byte, box.Volume()*8)
			if err := ser.Read(box, want, order); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, box.Volume()*8)
			if err := par.Read(box, got, order); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("trial %d: parallel read of %v (order %v) differs", trial, box, order)
			}
		}
	}
	full := NewBox([]int{0, 0}, []int{n, n})
	want := make([]byte, n*n*8)
	if err := ser.Read(full, want, RowMajor); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n*n*8)
	if err := par.Read(full, got, RowMajor); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("final full read differs")
	}
	if st := par.CacheStats(); st.Prefetches == 0 {
		t.Fatalf("read-ahead never fired: %+v", st)
	}
}

// TestParallelismCappedBySafeConcurrency: a tiny cache must force the
// worker bound down so pinned pages plus prefetches can never exhaust
// a pool shard.
func TestParallelismCappedBySafeConcurrency(t *testing.T) {
	a, err := Create("pr-cap", Options{
		DType: Float64, ChunkShape: []int{4, 4}, Bounds: []int{16, 16},
		CacheChunks: 2, Parallelism: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if got := a.Parallelism(); got != 1 {
		t.Fatalf("Parallelism() = %d with a 2-chunk cache, want 1", got)
	}
	// The workload must still be correct at the degenerate bound.
	full := NewBox([]int{0, 0}, []int{16, 16})
	data := make([]byte, full.Volume()*8)
	for i := range data {
		data[i] = byte(i)
	}
	if err := a.Write(full, data, RowMajor); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, full.Volume()*8)
	if err := a.Read(full, got, RowMajor); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, got) {
		t.Fatal("round trip differs")
	}
}

// TestParallelColMajorTranspose exercises the transposing (element-
// wise) path under parallel workers.
func TestParallelColMajorTranspose(t *testing.T) {
	const n = 24
	a, err := Create("pr-tr", Options{
		DType: Float64, ChunkShape: []int{5, 3}, Bounds: []int{n, n},
		Order: RowMajor, Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	full := NewBox([]int{0, 0}, []int{n, n})
	vals := make([]float64, n*n)
	for i := range vals {
		vals[i] = float64(i)
	}
	if err := a.WriteFloat64s(full, vals, RowMajor); err != nil {
		t.Fatal(err)
	}
	colVals, err := a.ReadFloat64s(full, ColMajor)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got, want := colVals[j*n+i], vals[i*n+j]; got != want {
				t.Fatalf("transposed (%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}
