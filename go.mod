module drxmp

go 1.24
