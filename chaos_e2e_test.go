package drxmp_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/drxclient"
	"drxmp/internal/serve"
)

// Chaos suite: the resilient client against a serving tier that
// misbehaves — injected transport faults on every pattern the
// FaultTransport knows, and a hard kill-and-restart of the HTTP server
// mid-workload. In every case the workload must complete with
// byte-identical data, read-your-write must hold, and nothing may leak:
// no hung goroutines, no admission budget still held.

// chaosWorkload runs workers concurrent read-your-write loops against
// arr through cl. Worker w owns the row band [w*bandRows, (w+1)*bandRows)
// so bands never overlap; each iteration PUTs a fresh deterministic
// pattern over the band and GETs it back expecting exactly those bytes.
// Returns the final payload per worker for end-state verification.
func chaosWorkload(ctx context.Context, cl *drxclient.Client, arr string, workers, iters, bandRows, cols int, onIter func()) ([][]byte, error) {
	const es = 8 // float64
	final := make([][]byte, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := []int{w * bandRows, 0}
			hi := []int{(w + 1) * bandRows, cols}
			payload := make([]byte, bandRows*cols*es)
			for it := 0; it < iters; it++ {
				for i := range payload {
					payload[i] = byte(w*31 + it*7 + i)
				}
				if err := cl.WriteSection(ctx, arr, lo, hi, payload); err != nil {
					errs[w] = fmt.Errorf("worker %d iter %d write: %w", w, it, err)
					return
				}
				got, err := cl.ReadSection(ctx, arr, lo, hi)
				if err != nil {
					errs[w] = fmt.Errorf("worker %d iter %d read: %w", w, it, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs[w] = fmt.Errorf("worker %d iter %d: read-your-write violated (%d bytes differ from written)", w, it, len(got))
					return
				}
				if onIter != nil {
					onIter()
				}
			}
			final[w] = append([]byte(nil), payload...)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return final, nil
}

// verifyEndState reads every band back (via the client AND directly)
// and requires the bytes each worker last wrote.
func verifyEndState(ctx context.Context, cl *drxclient.Client, f *drxmp.File, arr string, final [][]byte, bandRows, cols int) error {
	const es = 8
	for w, want := range final {
		lo := []int{w * bandRows, 0}
		hi := []int{(w + 1) * bandRows, cols}
		got, err := cl.ReadSection(ctx, arr, lo, hi)
		if err != nil {
			return fmt.Errorf("final served read band %d: %w", w, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("band %d: served end state differs from last write", w)
		}
		direct := make([]byte, bandRows*cols*es)
		if err := f.ReadSection(drxmp.NewBox(lo, hi), direct, drxmp.RowMajor); err != nil {
			return fmt.Errorf("final direct read band %d: %w", w, err)
		}
		if !bytes.Equal(direct, want) {
			return fmt.Errorf("band %d: direct end state differs from last write", w)
		}
	}
	return nil
}

// waitGoroutines polls until the goroutine count drops to at most
// want+slack, failing after the deadline. Transport keep-alive and
// handler teardown are asynchronous; polling is the honest check.
// settle, if non-nil, runs each poll so connections that went idle
// after the previous sweep (hedge losers, abandoned retries) still
// get reaped before the deadline.
func waitGoroutines(want, slack int, d time.Duration, settle func()) error {
	deadline := time.Now().Add(d)
	for {
		if settle != nil {
			settle()
		}
		n := runtime.NumGoroutine()
		if n <= want+slack {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("goroutines leaked: %d now vs %d baseline (+%d slack)\n%s", n, want, slack, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func assertAdmissionIdle(srv *serve.Server) error {
	for _, a := range srv.Stats().Arrays {
		if a.Admission.InFlight != 0 || a.Admission.InFlightBytes != 0 || a.Admission.Queued != 0 {
			return fmt.Errorf("array %s still holds admission budget: %+v", a.Name, a.Admission)
		}
	}
	return nil
}

// TestChaosFaultyTransport drives the workload through a transport that
// injects every fault pattern on a schedule: dropped connections,
// 503/429 shedding (with Retry-After), truncated GET bodies, PUT
// connection resets after the server applied the write, and straggler
// delays that the hedger races. The workload must complete exactly as
// if the network were clean.
func TestChaosFaultyTransport(t *testing.T) {
	const (
		workers  = 6
		iters    = 5
		bandRows = 8
		cols     = 48
	)
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "chaos-fault", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{16, 16}, Bounds: []int{workers * bandRows, cols},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		srv := serve.New(serve.Config{
			CoalesceWindow:      200 * time.Microsecond,
			MaxInFlightRequests: 32,
			MaxQueuedRequests:   128,
			RequestTimeout:      10 * time.Second,
		})
		if err := srv.Register("arr", f); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()

		rules := []*drxclient.FaultRule{
			{Mode: drxclient.FaultDrop, Every: 17},
			{Mode: drxclient.FaultStatus, Status: 503, RetryAfter: 0, Every: 13},
			{Mode: drxclient.FaultStatus, Status: 429, Every: 23},
			{Method: http.MethodGet, Mode: drxclient.FaultTruncate, TruncateTo: 11, Every: 19},
			{Method: http.MethodPut, Mode: drxclient.FaultReset, Every: 29},
			{Mode: drxclient.FaultDelay, Delay: 15 * time.Millisecond, Every: 31},
		}
		cl := drxclient.New("http://"+ln.Addr().String(), drxclient.Options{
			Transport: &drxclient.FaultTransport{Rules: rules},
			Retry: drxclient.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond,
				MaxDelay: 20 * time.Millisecond, AttemptTimeout: 2 * time.Second},
			Hedge:   drxclient.HedgePolicy{Enabled: true, WarmupDelay: 10 * time.Millisecond},
			Breaker: drxclient.BreakerPolicy{FailureThreshold: 40, OpenFor: 10 * time.Millisecond},
		})
		defer cl.CloseIdleConnections()

		base := runtime.NumGoroutine()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		final, err := chaosWorkload(ctx, cl, "arr", workers, iters, bandRows, cols, nil)
		if err != nil {
			return err
		}
		if err := verifyEndState(ctx, cl, f, "arr", final, bandRows, cols); err != nil {
			return err
		}

		st := cl.Stats()
		t.Logf("fault chaos: %+v", st)
		if st.Retries == 0 {
			return fmt.Errorf("fault schedule injected nothing (stats %+v)", st)
		}
		var fired int64
		for _, r := range rules {
			fired += r.Fired()
		}
		if fired == 0 {
			return fmt.Errorf("no fault rule fired")
		}
		if err := assertAdmissionIdle(srv); err != nil {
			return err
		}
		cl.CloseIdleConnections()
		return waitGoroutines(base, 4, 5*time.Second, cl.CloseIdleConnections)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosKillRestartMidWorkload hard-kills the HTTP server (open
// connections aborted, listener closed) twice while the workload runs,
// restarting it on the same address over the same arrays each time. The
// retrying clients must ride through both outages: every worker
// finishes, read-your-write holds, the end state is byte-identical
// through the server and directly, and neither goroutines nor admission
// budget leak. The array runs a tiered cache with a memory budget well
// under the working set, so the outages also land mid-demotion; after
// the file closes, its spill file must be gone — kill/restart cannot
// leak local temp state.
func TestChaosKillRestartMidWorkload(t *testing.T) {
	const (
		workers  = 6
		iters    = 8
		bandRows = 8
		cols     = 48
		kills    = 2
	)
	spillDir := t.TempDir()
	spillPath := filepath.Join(spillDir, "chaos.spill")
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "chaos-kill", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{16, 16}, Bounds: []int{workers * bandRows, cols},
			Tuning: drxmp.Tuning{CacheBytes: 4 << 10, SpillBytes: 64 << 10, SpillPath: spillPath},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := os.Stat(spillPath); err != nil {
			return fmt.Errorf("spill file not created at open: %w", err)
		}

		newServer := func() *serve.Server {
			srv := serve.New(serve.Config{
				CoalesceWindow:      200 * time.Microsecond,
				MaxInFlightRequests: 32,
				MaxQueuedRequests:   128,
				RequestTimeout:      10 * time.Second,
			})
			if err := srv.Register("arr", f); err != nil {
				panic(err) // fresh server over an open file cannot collide
			}
			return srv
		}

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addr := ln.Addr().String()
		srv := newServer()
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)

		cl := drxclient.New("http://"+addr, drxclient.Options{
			Retry: drxclient.RetryPolicy{MaxAttempts: 10, BaseDelay: 2 * time.Millisecond,
				MaxDelay: 50 * time.Millisecond, AttemptTimeout: 2 * time.Second},
			Hedge:   drxclient.HedgePolicy{Enabled: true, WarmupDelay: 10 * time.Millisecond},
			Breaker: drxclient.BreakerPolicy{FailureThreshold: 100, OpenFor: 10 * time.Millisecond},
		})
		defer cl.CloseIdleConnections()

		base := runtime.NumGoroutine()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()

		// The killer waits for workload progress, hard-kills the server,
		// leaves it dead briefly, then rebinds the same address with a
		// fresh serving tier over the same file.
		var ops atomic.Int64
		killerDone := make(chan error, 1)
		go func() {
			for k := 0; k < kills; k++ {
				target := ops.Load() + int64(workers) // let every worker land something first
				for ops.Load() < target {
					select {
					case <-ctx.Done():
						killerDone <- ctx.Err()
						return
					case <-time.After(time.Millisecond):
					}
				}
				httpSrv.Close() // hard kill: aborts in-flight connections too
				time.Sleep(25 * time.Millisecond)
				var nln net.Listener
				deadline := time.Now().Add(5 * time.Second)
				for {
					nln, err = net.Listen("tcp", addr)
					if err == nil {
						break
					}
					if time.Now().After(deadline) {
						killerDone <- fmt.Errorf("rebind %s: %w", addr, err)
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
				srv = newServer()
				httpSrv = &http.Server{Handler: srv.Handler()}
				go httpSrv.Serve(nln)
			}
			killerDone <- nil
		}()

		final, werr := chaosWorkload(ctx, cl, "arr", workers, iters, bandRows, cols, func() { ops.Add(1) })
		kerr := <-killerDone
		if werr != nil {
			return werr
		}
		if kerr != nil {
			return kerr
		}
		if err := verifyEndState(ctx, cl, f, "arr", final, bandRows, cols); err != nil {
			return err
		}

		st := cl.Stats()
		t.Logf("kill/restart chaos: %+v", st)
		if st.Retries == 0 {
			return fmt.Errorf("two hard kills caused zero retries — outage never hit the workload (stats %+v)", st)
		}
		if err := assertAdmissionIdle(srv); err != nil {
			return err
		}
		if cs := f.CacheStats(); cs.SpillDemoted == 0 {
			return fmt.Errorf("workload never exercised the spill tier: %+v", cs)
		}
		httpSrv.Close()
		cl.CloseIdleConnections()
		return waitGoroutines(base, 4, 5*time.Second, cl.CloseIdleConnections)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The file is closed: the spill tier must have removed its slab
	// file — two hard kills and a concurrent workload leak no local
	// temp state.
	if _, err := os.Stat(spillPath); !os.IsNotExist(err) {
		t.Fatalf("spill file survived close: stat err = %v", err)
	}
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after close: %d entries (%v)", len(ents), ents)
	}
}

// TestChaosDrainingServer pins the rolling-restart handshake: a
// draining server keeps answering data requests but reports not-ready,
// so clients route around it before the listener goes away.
func TestChaosDrainingServer(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "chaos-drain", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{8, 8}, Bounds: []int{16, 16},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		srv := serve.New(serve.Config{})
		if err := srv.Register("arr", f); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()

		cl := drxclient.New("http://"+ln.Addr().String(), drxclient.Options{})
		defer cl.CloseIdleConnections()
		ctx := context.Background()
		if !cl.Ready(ctx) {
			return fmt.Errorf("fresh server not ready")
		}
		srv.SetDraining(true)
		if cl.Ready(ctx) {
			return fmt.Errorf("draining server still reports ready")
		}
		// Draining sheds new arrivals at the LB, not in-flight data: the
		// section path still answers.
		if _, err := cl.ReadSection(ctx, "arr", []int{0, 0}, []int{8, 8}); err != nil {
			return fmt.Errorf("read against draining server: %w", err)
		}
		srv.SetDraining(false)
		if !cl.Ready(ctx) {
			return fmt.Errorf("un-drained server not ready again")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
