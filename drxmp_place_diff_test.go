package drxmp_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

// Differential suite for aggregator placement: carving the collective
// aggregation domains differently — byte-cyclic stripes, zone-curve
// chunk groups, or sticky cache-affinity ownership — changes which
// rank moves which bytes, never the bytes themselves. Every policy,
// with write-behind buffering and the tiered spill cache underneath
// and per-region flush election both on and off, must come out
// byte-identical to the serial immediate-dispatch baseline over
// 2-D/3-D shapes, odd chunks, and overlapping rank sections.

// placeVariant is one placement configuration under test.
type placeVariant struct {
	name       string
	placement  string
	noElection bool
}

func placeVariants() []placeVariant {
	return []placeVariant{
		{"byte-cyclic", drxmp.PlacementByteCyclic, false},
		{"zone-curve", drxmp.PlacementZoneCurve, false},
		{"cache-affinity", drxmp.PlacementCacheAffinity, false},
		{"cache-affinity-unelected", drxmp.PlacementCacheAffinity, true},
	}
}

// TestPlacementDifferentialIdentical drives interleaved overlapping
// collective write/read rounds through every placement policy — on
// top of write-behind buffering and the tiered (memory + local-disk
// spill) cache — and requires byte-identical files and read buffers
// against a serial no-placement baseline.
func TestPlacementDifferentialIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs in the dedicated placement race step")
	}
	const ranks = 4
	variants := placeVariants()
	for _, sh := range collShapes() {
		t.Run(sh.name, func(t *testing.T) {
			spillDir := t.TempDir()
			full := drxmp.NewBox(make([]int, len(sh.bounds)), sh.bounds)
			// Index 0 is the serial baseline; variant i lands at i+1.
			fullBytes := make([][]byte, len(variants)+1)
			rankReads := make([][][]byte, ranks)
			for r := range rankReads {
				rankReads[r] = make([][]byte, len(variants)+1)
			}
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				files := make([]*drxmp.File, 0, len(variants)+1)
				mk := func(name string, tuning drxmp.Tuning) error {
					f, err := drxmp.Create(c, fmt.Sprintf("place-%s-%s", name, sh.name), drxmp.Options{
						DType: drxmp.Float64, ChunkShape: sh.chunk, Bounds: sh.bounds,
						FS: pfs.Options{
							Servers: 3, StripeSize: 1 << 10, Scheduler: pfs.Elevator,
						},
						Tuning: tuning,
					})
					if err != nil {
						return err
					}
					files = append(files, f)
					return nil
				}
				// Serial baseline: immediate dispatch, no cache, no policy.
				if err := mk("baseline", drxmp.Tuning{CollectiveParallelism: 8}); err != nil {
					return err
				}
				for _, v := range variants {
					err := mk(v.name, drxmp.Tuning{
						CollectiveParallelism: 8,
						WriteBehindBytes:      4096,
						CacheBytes:            8 << 10,
						SpillBytes:            1 << 20,
						SpillPath:             filepath.Join(spillDir, v.name+"-"+sh.name+".spill"),
						Placement:             v.placement,
						NoFlushElection:       v.noElection,
					})
					if err != nil {
						return err
					}
				}
				defer func() {
					for _, f := range files {
						f.Close()
					}
				}()

				// Interleaved rounds: overlapping collective writes, then a
				// collective read of a shifted overlapping section that
				// crosses other ranks' dirty extents.
				for round := 0; round < 3; round++ {
					wbox := slabBox(sh.bounds, ranks, c.Rank(), round)
					data := rankData(c.Rank(), wbox, int64(90+round))
					for _, f := range files {
						if err := f.WriteSectionAll(wbox, data, drxmp.RowMajor); err != nil {
							return err
						}
					}
					rbox := slabBox(sh.bounds, ranks, (c.Rank()+1)%ranks, round+1)
					var ref []byte
					for i, f := range files {
						got := make([]byte, rbox.Volume()*8)
						if err := f.ReadSectionAll(rbox, got, drxmp.RowMajor); err != nil {
							return err
						}
						if i == 0 {
							ref = got
						} else if !bytes.Equal(ref, got) {
							return fmt.Errorf("rank %d round %d: %s collective read differs from baseline",
								c.Rank(), round, variants[i-1].name)
						}
					}
				}

				// Final overlapping collective read, captured per rank.
				rbox := slabBox(sh.bounds, ranks, c.Rank(), 3)
				for i, f := range files {
					got := make([]byte, rbox.Volume()*8)
					if err := f.ReadSectionAll(rbox, got, drxmp.RowMajor); err != nil {
						return err
					}
					rankReads[c.Rank()][i] = got
				}

				// Sync — the elected variants flush only owned regions per
				// rank, which must still drain everything collectively — then
				// rank 0 reads each full file through the independent path.
				for _, f := range files {
					if err := f.Sync(); err != nil {
						return err
					}
				}
				if c.Rank() == 0 {
					for i, f := range files {
						buf := make([]byte, full.Volume()*8)
						if err := f.ReadSection(full, buf, drxmp.RowMajor); err != nil {
							return err
						}
						fullBytes[i] = buf
					}
				}
				return c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range variants {
				if !bytes.Equal(fullBytes[0], fullBytes[i+1]) {
					t.Errorf("file under %s differs from serial baseline", v.name)
				}
				for r := range rankReads {
					if !bytes.Equal(rankReads[r][0], rankReads[r][i+1]) {
						t.Errorf("rank %d: %s collective read differs from baseline", r, v.name)
					}
				}
			}
		})
	}
}

// TestPlacementKnobPlumbing pins the drxmp-level wiring: the Placement
// and NoFlushElection knobs round-trip through Tuning(), unknown
// policy names are rejected at open, and NoFlushElection without a
// policy is an option error.
func TestPlacementKnobPlumbing(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "placeknob", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{4, 4}, Bounds: []int{8, 8},
			Tuning: drxmp.Tuning{Placement: drxmp.PlacementCacheAffinity},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		got := f.Tuning()
		if got.Placement != drxmp.PlacementCacheAffinity || got.NoFlushElection {
			return fmt.Errorf("Tuning() = {Placement:%q NoFlushElection:%v}, want cache-affinity elected",
				got.Placement, got.NoFlushElection)
		}

		g, err := drxmp.Create(c, "placeknob2", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{4, 4}, Bounds: []int{8, 8},
			Tuning: drxmp.Tuning{Placement: drxmp.PlacementZoneCurve, NoFlushElection: true},
		})
		if err != nil {
			return err
		}
		defer g.Close()
		if got := g.Tuning(); !got.NoFlushElection {
			return fmt.Errorf("NoFlushElection did not round-trip")
		}

		if _, err := drxmp.Create(c, "placebad", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{4, 4}, Bounds: []int{8, 8},
			Tuning: drxmp.Tuning{Placement: "hilbert"},
		}); !errors.Is(err, drxmp.ErrBadOptions) {
			return fmt.Errorf("unknown placement: err = %v, want ErrBadOptions", err)
		}
		if _, err := drxmp.Create(c, "placebad2", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{4, 4}, Bounds: []int{8, 8},
			Tuning: drxmp.Tuning{NoFlushElection: true},
		}); !errors.Is(err, drxmp.ErrBadOptions) {
			return fmt.Errorf("NoFlushElection without policy: err = %v, want ErrBadOptions", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPlacementFlushElectStats: under an elected policy the shared
// cache records owned (per-region) flush sweeps, and with election
// disabled it records none — the coordination is observable, not just
// plumbed.
func TestPlacementFlushElectStats(t *testing.T) {
	const ranks = 4
	const n = 64
	run := func(noElection bool) drxmp.CacheStats {
		var stats drxmp.CacheStats
		err := cluster.Run(ranks, func(c *cluster.Comm) error {
			f, err := drxmp.Create(c, fmt.Sprintf("placeelect-%v", noElection), drxmp.Options{
				DType: drxmp.Float64, ChunkShape: []int{8, n}, Bounds: []int{n, n},
				FS: pfs.Options{Servers: 3, StripeSize: 512},
				Tuning: drxmp.Tuning{
					WriteBehindBytes: 2048,
					Placement:        drxmp.PlacementCacheAffinity,
					NoFlushElection:  noElection,
				},
			})
			if err != nil {
				return err
			}
			defer f.Close()
			for round := 0; round < 2; round++ {
				box := slabBox([]int{n, n}, ranks, c.Rank(), 0)
				data := rankData(c.Rank(), box, int64(round))
				if err := f.WriteSectionAll(box, data, drxmp.RowMajor); err != nil {
					return err
				}
				if err := f.Sync(); err != nil {
					return err
				}
			}
			if c.Rank() == 0 {
				stats = f.CacheStats()
			}
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	elected := run(false)
	unelected := run(true)
	if elected.OwnedFlushes == 0 {
		t.Fatalf("elected run recorded no owned flush sweeps: %+v", elected)
	}
	if unelected.OwnedFlushes != 0 {
		t.Fatalf("unelected run recorded %d owned flush sweeps", unelected.OwnedFlushes)
	}
}
