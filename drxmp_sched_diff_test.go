package drxmp_test

import (
	"bytes"
	"fmt"
	"testing"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

// Differential suite for the elevator scheduler + adaptive cb_nodes:
// collective reads/writes through elevator-scheduled servers with
// adaptive (or extreme) aggregator counts must be byte-identical to
// the FIFO + one-aggregator-per-rank baseline across 2-D/3-D shapes,
// odd chunk sizes, and overlapping rank sections. Request reordering,
// merging, and domain re-carving may only change *when* bytes move,
// never *which* bytes.

// schedVariant is one scheduler/aggregator configuration under test.
type schedVariant struct {
	name    string
	sched   pfs.Scheduler
	cbNodes int
}

func schedVariants() []schedVariant {
	return []schedVariant{
		{"fifo-fixed", pfs.FIFO, -1},           // the PR 2 baseline
		{"elevator-adaptive", pfs.Elevator, 0}, // the new default stack
		{"elevator-cb1", pfs.Elevator, 1},      // extreme funneling
		{"fifo-adaptive", pfs.FIFO, 0},         // cb_nodes alone
	}
}

// TestCollectiveSchedulerCBNodesIdentical writes disjoint slabs and
// reads overlapping sections through every scheduler/cb_nodes variant,
// requiring all resulting files and all read buffers to match the
// fifo-fixed baseline exactly.
func TestCollectiveSchedulerCBNodesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs in the dedicated collective race step")
	}
	const ranks = 4
	variants := schedVariants()
	for _, sh := range collShapes() {
		t.Run(sh.name, func(t *testing.T) {
			full := drxmp.NewBox(make([]int, len(sh.bounds)), sh.bounds)
			fullBytes := make([][]byte, len(variants))
			rankReads := make([][][]byte, ranks)
			for r := range rankReads {
				rankReads[r] = make([][]byte, len(variants))
			}
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				files := make([]*drxmp.File, len(variants))
				for i, v := range variants {
					f, err := drxmp.Create(c, fmt.Sprintf("sched-%s-%s", v.name, sh.name), drxmp.Options{
						DType: drxmp.Float64, ChunkShape: sh.chunk, Bounds: sh.bounds,
						FS: pfs.Options{
							Servers: 4, StripeSize: 1 << 10, Scheduler: v.sched,
						},
						Tuning: drxmp.Tuning{
							CollectiveParallelism: 8,
							CBNodes:               v.cbNodes,
						},
					})
					if err != nil {
						return err
					}
					defer f.Close()
					files[i] = f
				}

				// Disjoint slab writes through every variant.
				box := slabBox(sh.bounds, ranks, c.Rank(), 0)
				data := rankData(c.Rank(), box, 21)
				for _, f := range files {
					if err := f.WriteSectionAll(box, data, drxmp.RowMajor); err != nil {
						return err
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}

				// Overlapping collective reads through every variant.
				rbox := slabBox(sh.bounds, ranks, c.Rank(), 3)
				for i, f := range files {
					got := make([]byte, rbox.Volume()*8)
					if err := f.ReadSectionAll(rbox, got, drxmp.RowMajor); err != nil {
						return err
					}
					rankReads[c.Rank()][i] = got
				}

				// Rank 0 captures each file's full contents through the
				// independent path (no collective machinery involved).
				if c.Rank() == 0 {
					for i, f := range files {
						buf := make([]byte, full.Volume()*8)
						if err := f.ReadSection(full, buf, drxmp.RowMajor); err != nil {
							return err
						}
						fullBytes[i] = buf
					}
				}
				return c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(variants); i++ {
				if !bytes.Equal(fullBytes[0], fullBytes[i]) {
					t.Errorf("file under %s differs from %s baseline", variants[i].name, variants[0].name)
				}
				for r := range rankReads {
					if !bytes.Equal(rankReads[r][0], rankReads[r][i]) {
						t.Errorf("rank %d: %s collective read differs from %s", r, variants[i].name, variants[0].name)
					}
				}
			}
		})
	}
}

// TestCollectiveSchedulerOverlappingWrites drives overlapping rank
// sections (higher rank wins, per the documented overlay order)
// through every variant: the deterministic outcome must survive
// elevator reordering and aggregator re-carving.
func TestCollectiveSchedulerOverlappingWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs in the dedicated collective race step")
	}
	const ranks = 4
	variants := schedVariants()
	for _, sh := range collShapes() {
		t.Run(sh.name, func(t *testing.T) {
			full := drxmp.NewBox(make([]int, len(sh.bounds)), sh.bounds)
			fullBytes := make([][]byte, len(variants))
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				files := make([]*drxmp.File, len(variants))
				for i, v := range variants {
					f, err := drxmp.Create(c, fmt.Sprintf("sovl-%s-%s", v.name, sh.name), drxmp.Options{
						DType: drxmp.Float64, ChunkShape: sh.chunk, Bounds: sh.bounds,
						FS: pfs.Options{
							Servers: 4, StripeSize: 1 << 10, Scheduler: v.sched,
						},
						Tuning: drxmp.Tuning{
							CollectiveParallelism: 8,
							CBNodes:               v.cbNodes,
						},
					})
					if err != nil {
						return err
					}
					defer f.Close()
					files[i] = f
				}
				for trial := 0; trial < 3; trial++ {
					box := slabBox(sh.bounds, ranks, c.Rank(), 2+trial)
					data := rankData(c.Rank(), box, int64(40+trial))
					for _, f := range files {
						if err := f.WriteSectionAll(box, data, drxmp.RowMajor); err != nil {
							return err
						}
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					for i, f := range files {
						buf := make([]byte, full.Volume()*8)
						if err := f.ReadSection(full, buf, drxmp.RowMajor); err != nil {
							return err
						}
						fullBytes[i] = buf
					}
				}
				return c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(variants); i++ {
				if !bytes.Equal(fullBytes[0], fullBytes[i]) {
					t.Errorf("overlapping writes under %s diverged from %s", variants[i].name, variants[0].name)
				}
			}
		})
	}
}

// TestCBNodesKnob pins the drxmp-level plumbing of the aggregator
// knob: option, setter, and accessor.
func TestCBNodesKnob(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "cbknob", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{4, 4}, Bounds: []int{8, 8},
			Tuning: drxmp.Tuning{CBNodes: 3},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		if got := f.CBNodes(); got != 3 {
			return fmt.Errorf("CBNodes() = %d, want 3", got)
		}
		f.SetCBNodes(-1)
		if got := f.CBNodes(); got != -1 {
			return fmt.Errorf("after SetCBNodes(-1): %d, want -1", got)
		}
		if got := f.IO().CBNodes; got != -1 {
			return fmt.Errorf("IO().CBNodes = %d, want -1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
