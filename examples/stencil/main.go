// Stencil: the Global-Array processing model of the paper's Section II
// on a real kernel. Four ranks distribute a 2-D grid (BLOCK zones),
// iterate a Jacobi smoothing stencil using one-sided RMA for halo
// elements ("the element can be accessed either as a local array
// element or as a remote array element"), and periodically checkpoint
// into the extendible array file by growing a snapshot dimension — one
// snapshot per checkpoint, appended with no reorganization.
//
// Run with:
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"math"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/grid"
	"drxmp/internal/pfs"
)

const (
	ranks  = 4
	n      = 64 // grid is n x n
	iters  = 8
	ckEach = 4 // checkpoint every ckEach iterations
)

func main() {
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		// The checkpoint file: (snapshot, i, j), starting with one
		// snapshot of capacity and growing along dimension 0.
		ck, err := drxmp.Create(c, "stencil-ck", drxmp.Options{
			DType:      drxmp.Float64,
			ChunkShape: []int{1, 16, 16},
			Bounds:     []int{1, n, n},
			FS:         pfs.Options{Servers: 2, StripeSize: 16 << 10},
		})
		if err != nil {
			return err
		}
		defer ck.Close()

		// The working grid: a separate 2-D principal array distributed
		// into zone memory.
		work, err := drxmp.Create(c, "stencil-grid", drxmp.Options{
			DType:      drxmp.Float64,
			ChunkShape: []int{16, 16},
			Bounds:     []int{n, n},
		})
		if err != nil {
			return err
		}
		defer work.Close()
		if c.Rank() == 0 {
			// Hot boundary on the top edge, cold elsewhere.
			full := drxmp.NewBox([]int{0, 0}, []int{n, n})
			vals := make([]float64, n*n)
			for j := 0; j < n; j++ {
				vals[j] = 100
			}
			if err := work.WriteSectionFloat64s(full, vals, drxmp.RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		da, err := work.Distribute(drxmp.RowMajor)
		if err != nil {
			return err
		}
		defer da.Free()

		my := da.LocalBox()
		sh := my.Shape()
		cur := make([]float64, my.Volume())
		for i := range cur {
			cur[i] = f64(da.LocalData()[i*8:])
		}
		next := make([]float64, len(cur))

		get := func(i, j int) (float64, error) {
			if i < 0 || i >= n || j < 0 || j >= n {
				return 0, nil // fixed zero boundary outside the grid
			}
			if my.Contains([]int{i, j}) {
				return cur[grid.Offset(sh, []int{i - my.Lo[0], j - my.Lo[1]}, grid.RowMajor)], nil
			}
			return da.Get([]int{i, j}) // halo: one-sided remote access
		}

		snapshots := 1
		for it := 0; it < iters; it++ {
			var remote int
			for li := 0; li < sh[0]; li++ {
				for lj := 0; lj < sh[1]; lj++ {
					gi, gj := my.Lo[0]+li, my.Lo[1]+lj
					if gi == 0 { // keep the hot edge fixed
						next[li*sh[1]+lj] = cur[li*sh[1]+lj]
						continue
					}
					up, err := get(gi-1, gj)
					if err != nil {
						return err
					}
					down, err := get(gi+1, gj)
					if err != nil {
						return err
					}
					left, err := get(gi, gj-1)
					if err != nil {
						return err
					}
					right, err := get(gi, gj+1)
					if err != nil {
						return err
					}
					if !my.Contains([]int{gi - 1, gj}) || !my.Contains([]int{gi + 1, gj}) ||
						!my.Contains([]int{gi, gj - 1}) || !my.Contains([]int{gi, gj + 1}) {
						remote++
					}
					next[li*sh[1]+lj] = 0.25 * (up + down + left + right)
				}
			}
			// Publish the new iterate into the window, epoch-delimited.
			if err := da.Fence(); err != nil {
				return err
			}
			copy(cur, next)
			for i, v := range cur {
				putF64(da.LocalData()[i*8:], v)
			}
			if err := da.Fence(); err != nil {
				return err
			}

			if (it+1)%ckEach == 0 {
				// Grow the snapshot dimension and write this iterate.
				if err := ck.Extend(0, 1); err != nil {
					return err
				}
				snapshots++
				snapBox := drxmp.NewBox(
					[]int{snapshots - 1, my.Lo[0], my.Lo[1]},
					[]int{snapshots, my.Hi[0], my.Hi[1]},
				)
				if err := ck.WriteSectionFloat64s(snapBox, cur, drxmp.RowMajor); err != nil {
					return err
				}
				if c.Rank() == 0 {
					fmt.Printf("iteration %d: checkpoint %d written (file now %v)\n",
						it+1, snapshots-1, ck.Bounds())
				}
			}
			if c.Rank() == 0 && it == 0 {
				fmt.Printf("rank 0: %d halo accesses went through one-sided RMA in iteration 1\n", remote)
			}
		}

		// Verify the last checkpoint: rank 0 reads the full snapshot and
		// checks the residual is sane (smoothing keeps values in [0,100]).
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			last := drxmp.NewBox([]int{snapshots - 1, 0, 0}, []int{snapshots, n, n})
			vals, err := ck.ReadSectionFloat64s(last, drxmp.RowMajor)
			if err != nil {
				return err
			}
			minV, maxV, sum := math.Inf(1), math.Inf(-1), 0.0
			for _, v := range vals {
				minV = math.Min(minV, v)
				maxV = math.Max(maxV, v)
				sum += v
			}
			if minV < 0 || maxV > 100 {
				return fmt.Errorf("checkpoint out of physical range: [%v, %v]", minV, maxV)
			}
			fmt.Printf("final checkpoint: min=%.3f max=%.3f mean=%.3f over %d cells, %d snapshots on disk\n",
				minV, maxV, sum/float64(len(vals)), len(vals), snapshots)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func f64(p []byte) float64 {
	var u uint64
	for i := 7; i >= 0; i-- {
		u = u<<8 | uint64(p[i])
	}
	return math.Float64frombits(u)
}

func putF64(p []byte, v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		p[i] = byte(u >> (8 * i))
	}
}
