// Out-of-core matrix multiply: C = A·B where all three matrices live
// in extendible array files, computed block-wise by a 4-rank parallel
// program — the ScaLAPACK-style workload the paper's introduction
// motivates ("the extensive use of algebraic libraries ... attest to
// the array/matrix data model").
//
// The demonstration has two acts:
//
//  1. Each rank owns a zone of C (the BLOCK×BLOCK decomposition of
//     Fig. 1), reads the A row-panels and B column-panels it needs
//     straight from the array files, multiplies, and writes its C zone
//     back. No rank ever materializes a whole matrix.
//
//  2. The problem then *grows*: new columns are appended to B (think
//     new right-hand sides arriving), which extends B and C along
//     dimension 1 — the extension conventional formats cannot do
//     without rewriting the file. Only the new C columns are computed;
//     every previously written C byte is untouched, and the final
//     verification covers old and new regions alike.
//
// Run with:
//
//	go run ./examples/oocmatmul
package main

import (
	"fmt"
	"log"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/grid"
	"drxmp/internal/pfs"
)

const (
	ranks = 4
	m     = 48 // rows of A and C
	kDim  = 40 // columns of A = rows of B
	n     = 32 // columns of B and C (before growth)
	nGrow = 16 // columns appended to B and C in act 2
)

// aVal and bVal define the input matrices; integer-valued so the
// float64 dot products are exact and verification can use ==.
func aVal(i, j int) float64 { return float64((i+2*j)%7 - 3) }
func bVal(i, j int) float64 { return float64((3*i+j)%5 - 2) }

// cVal is the ground-truth dot product.
func cVal(i, j int) float64 {
	var s float64
	for t := 0; t < kDim; t++ {
		s += aVal(i, t) * bVal(t, j)
	}
	return s
}

// fillSection writes val(i,j) over the given box of f from rank 0.
func fillSection(f *drxmp.File, box drxmp.Box, val func(i, j int) float64) error {
	vals := make([]float64, box.Volume())
	at := 0
	box.Iterate(grid.RowMajor, func(idx []int) bool {
		vals[at] = val(idx[0], idx[1])
		at++
		return true
	})
	return f.WriteSectionFloat64s(box, vals, drxmp.RowMajor)
}

// multiplyZone computes C[zone] = A[rows,:]·B[:,cols] by reading the
// needed panels from the array files and writes the result back.
func multiplyZone(a, b, cf *drxmp.File, zone drxmp.Box) error {
	rows := zone.Hi[0] - zone.Lo[0]
	cols := zone.Hi[1] - zone.Lo[1]
	// Row panel of A covering the zone's rows (rows × kDim).
	aPanel, err := a.ReadSectionFloat64s(
		drxmp.NewBox([]int{zone.Lo[0], 0}, []int{zone.Hi[0], kDim}), drxmp.RowMajor)
	if err != nil {
		return fmt.Errorf("read A panel: %w", err)
	}
	// Column panel of B covering the zone's columns (kDim × cols).
	bPanel, err := b.ReadSectionFloat64s(
		drxmp.NewBox([]int{0, zone.Lo[1]}, []int{kDim, zone.Hi[1]}), drxmp.RowMajor)
	if err != nil {
		return fmt.Errorf("read B panel: %w", err)
	}
	out := make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		for t := 0; t < kDim; t++ {
			av := aPanel[i*kDim+t]
			if av == 0 {
				continue
			}
			brow := bPanel[t*cols:]
			crow := out[i*cols:]
			for j := 0; j < cols; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return cf.WriteSectionFloat64s(zone, out, drxmp.RowMajor)
}

// verify checks C == A·B over the given column range [colLo, colHi).
func verify(cf *drxmp.File, colLo, colHi int) error {
	box := drxmp.NewBox([]int{0, colLo}, []int{m, colHi})
	got, err := cf.ReadSectionFloat64s(box, drxmp.RowMajor)
	if err != nil {
		return err
	}
	at := 0
	var bad error
	box.Iterate(grid.RowMajor, func(idx []int) bool {
		if want := cVal(idx[0], idx[1]); got[at] != want {
			bad = fmt.Errorf("C[%d,%d] = %v, want %v", idx[0], idx[1], got[at], want)
			return false
		}
		at++
		return true
	})
	return bad
}

func main() {
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		fsOpts := pfs.Options{Servers: 4, StripeSize: 16 << 10}
		newFile := func(name string, bounds []int) (*drxmp.File, error) {
			return drxmp.Create(c, name, drxmp.Options{
				DType:      drxmp.Float64,
				ChunkShape: []int{8, 8},
				Bounds:     bounds,
				FS:         fsOpts,
			})
		}
		a, err := newFile("matA", []int{m, kDim})
		if err != nil {
			return err
		}
		defer a.Close()
		b, err := newFile("matB", []int{kDim, n})
		if err != nil {
			return err
		}
		defer b.Close()
		cf, err := newFile("matC", []int{m, n})
		if err != nil {
			return err
		}
		defer cf.Close()

		// Rank 0 seeds the inputs; everyone waits for the data.
		if c.Rank() == 0 {
			if err := fillSection(a, drxmp.NewBox([]int{0, 0}, []int{m, kDim}), aVal); err != nil {
				return err
			}
			if err := fillSection(b, drxmp.NewBox([]int{0, 0}, []int{kDim, n}), bVal); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Act 1: every rank multiplies its zone of C.
		zones, err := cf.MyZone()
		if err != nil {
			return err
		}
		for _, zone := range zones {
			if err := multiplyZone(a, b, cf, zone); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := verify(cf, 0, n); err != nil {
				return fmt.Errorf("act 1 verification: %w", err)
			}
			fmt.Printf("act 1: C(%dx%d) = A(%dx%d) x B(%dx%d) verified across %d ranks\n",
				m, n, m, kDim, kDim, n, ranks)
		}

		// Act 2: the problem grows — nGrow new columns of B arrive.
		// Extending dimension 1 is exactly what a row-major array file
		// cannot do without a rewrite; here it is a metadata operation.
		if err := b.Extend(1, nGrow); err != nil {
			return err
		}
		if err := cf.Extend(1, nGrow); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := fillSection(b, drxmp.NewBox([]int{0, n}, []int{kDim, n + nGrow}), bVal); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}

		// Only the new C columns need computing. Split them by rank in
		// row bands.
		rowsPer := (m + ranks - 1) / ranks
		lo := c.Rank() * rowsPer
		hi := min(lo+rowsPer, m)
		if lo < hi {
			newCols := drxmp.NewBox([]int{lo, n}, []int{hi, n + nGrow})
			if err := multiplyZone(a, b, cf, newCols); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Verify everything: the old region (must be untouched by
			// the extension) and the new columns.
			if err := verify(cf, 0, n+nGrow); err != nil {
				return fmt.Errorf("act 2 verification: %w", err)
			}
			fmt.Printf("act 2: B and C grew to %d columns in place; full C verified, old bytes untouched\n", n+nGrow)
			fmt.Printf("chunks in C: %d (axial records: %d)\n", cf.Chunks(), cf.Meta().Space.NumRecords())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
