// Quickstart: create a disk-resident extendible array, write a
// sub-array, extend two different dimensions (no reorganization), and
// read data back in both C and Fortran memory order.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"drxmp/drx"
	"drxmp/internal/pfs"
)

func main() {
	dir, err := os.MkdirTemp("", "drx-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "demo")

	// A 10x10 array of float64 stored as 2x3-element chunks — the
	// geometry of the paper's Fig. 1.
	a, err := drx.Create(path, drx.Options{
		DType:      drx.Float64,
		ChunkShape: []int{2, 3},
		Bounds:     []int{10, 10},
		FS:         pfs.Options{Backend: pfs.Disk},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Write a 4x5 sub-array at (2,3) in C order.
	box := drx.NewBox([]int{2, 3}, []int{6, 8})
	vals := make([]float64, box.Volume())
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	if err := a.WriteFloat64s(box, vals, drx.RowMajor); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d elements into %v\n", len(vals), box)

	// Extend dimension 1, then dimension 0 — the operations a
	// conventional array file cannot do without rewriting everything.
	if err := a.Extend(1, 8); err != nil {
		log.Fatal(err)
	}
	if err := a.Extend(0, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extended to bounds %v (%d chunks on disk, no data moved)\n", a.Bounds(), a.Chunks())

	// Data written before the extensions is untouched.
	back, err := a.ReadFloat64s(box, drx.RowMajor)
	if err != nil {
		log.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			log.Fatalf("element %d changed after extension: %v != %v", i, back[i], vals[i])
		}
	}
	fmt.Println("verified: all pre-extension data intact")

	// Read the same box straight into Fortran order — the on-the-fly
	// transposition of the paper (no out-of-core transpose step).
	colVals, err := a.ReadFloat64s(box, drx.ColMajor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C order row 0:      %v\n", vals[:5])
	col0 := make([]float64, 4)
	copy(col0, colVals[:4])
	fmt.Printf("Fortran order col 0: %v\n", col0)

	// Write into the newly grown region.
	if err := a.Set([]int{13, 17}, 99.5); err != nil {
		log.Fatal(err)
	}
	v, err := a.At([]int{13, 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("element in grown region: %v\n", v)

	if err := a.Close(); err != nil {
		log.Fatal(err)
	}

	// Re-open: the metadata (axial vectors) round-trips through .xmd.
	re, err := drx.Open(path, pfs.Options{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	fmt.Printf("re-opened: bounds=%v chunks=%d cache=%+v\n", re.Bounds(), re.Chunks(), re.CacheStats())
}
