// Climate: the motivating workload of the paper's introduction — a
// dataset (time × lat × lon) that "grows incrementally over time" as
// observations arrive, processed by a parallel program.
//
// Four ranks cooperate: at each simulated day the array is extended
// along the time dimension (a collective, metadata-only operation) and
// each rank writes its latitude band of the new day collectively.
// Afterwards, a single-cell time series — the access pattern that kills
// one-dimension-extendible formats when time is not the record
// dimension — is read back and verified.
//
// Run with:
//
//	go run ./examples/climate
package main

import (
	"fmt"
	"log"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

const (
	ranks = 4
	nLat  = 32
	nLon  = 64
	days  = 10
)

// observe fabricates the measurement for (day, lat, lon).
func observe(day, lat, lon int) float64 {
	return float64(day)*1e4 + float64(lat)*1e2 + float64(lon)
}

func main() {
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		// Start with a single day of capacity; time will grow.
		f, err := drxmp.Create(c, "climate", drxmp.Options{
			DType:      drxmp.Float64,
			ChunkShape: []int{1, 8, 16}, // one day per chunk slab
			Bounds:     []int{1, nLat, nLon},
			FS:         pfs.Options{Servers: 4, StripeSize: 32 << 10},
		})
		if err != nil {
			return err
		}
		defer f.Close()

		latPerRank := nLat / ranks
		myLat0 := c.Rank() * latPerRank

		for day := 0; day < days; day++ {
			// Day 0 fits the initial bounds; afterwards extend time by 1.
			if day > 0 {
				if err := f.Extend(0, 1); err != nil {
					return err
				}
			}
			// Each rank writes its latitude band of today's observations.
			box := drxmp.NewBox(
				[]int{day, myLat0, 0},
				[]int{day + 1, myLat0 + latPerRank, nLon},
			)
			vals := make([]float64, box.Volume())
			i := 0
			for lat := myLat0; lat < myLat0+latPerRank; lat++ {
				for lon := 0; lon < nLon; lon++ {
					vals[i] = observe(day, lat, lon)
					i++
				}
			}
			if err := f.WriteSectionFloat64s(box, vals, drxmp.RowMajor); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if c.Rank() == 0 && (day == 0 || day == days-1) {
				fmt.Printf("day %2d ingested: bounds=%v chunks=%d\n", day, f.Bounds(), f.Chunks())
			}
		}

		// Analysis phase: rank 0 pulls the full time series of one cell —
		// a column through the grown dimension.
		if c.Rank() == 0 {
			lat, lon := 17, 42
			series := drxmp.NewBox([]int{0, lat, lon}, []int{days, lat + 1, lon + 1})
			vals, err := f.ReadSectionFloat64s(series, drxmp.RowMajor)
			if err != nil {
				return err
			}
			for day, v := range vals {
				if v != observe(day, lat, lon) {
					return fmt.Errorf("time series corrupt at day %d: %v", day, v)
				}
			}
			fmt.Printf("time series at (lat=%d, lon=%d): %d days verified, first=%v last=%v\n",
				lat, lon, len(vals), vals[0], vals[len(vals)-1])
			st := f.FS().Stats()
			fmt.Printf("I/O totals: %d requests, %d bytes\n", st.Requests(), st.Bytes())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
