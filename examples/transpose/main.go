// Transpose: a matrix is written once by a producer that thinks in C
// (row-major) order and consumed by a Fortran-order solver — the exact
// scenario the paper's introduction uses to motivate chunked storage
// ("an array file organized in row-major order causes applications that
// subsequently access the data in column-major order to have abysmal
// performance").
//
// The example stores the matrix as chunks, reads it back in both
// orders, verifies both against ground truth, and prints the I/O
// statistics showing the two scans cost the same — no out-of-core
// transposition ever runs.
//
// Run with:
//
//	go run ./examples/transpose
package main

import (
	"fmt"
	"log"

	"drxmp/drx"
	"drxmp/internal/grid"
	"drxmp/internal/pfs"
)

const n = 256

func truth(i, j int) float64 { return float64(i)*1000 + float64(j) }

func main() {
	a, err := drx.Create("transpose-demo", drx.Options{
		DType:      drx.Float64,
		ChunkShape: []int{32, 32},
		Bounds:     []int{n, n},
		FS:         pfs.Options{Cost: pfs.DefaultCost()},
		// Cache one chunk row so scans are measured, not cached away.
		CacheChunks: n / 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()

	// Producer: writes row-major.
	full := drx.NewBox([]int{0, 0}, []int{n, n})
	vals := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			vals[i*n+j] = truth(i, j)
		}
	}
	if err := a.WriteFloat64s(full, vals, drx.RowMajor); err != nil {
		log.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		log.Fatal(err)
	}

	// Consumer 1: C-order scan, row slabs.
	a.FS().ResetStats()
	rowBuf := make([]byte, n*8)
	for i := 0; i < n; i++ {
		if err := a.Read(drx.NewBox([]int{i, 0}, []int{i + 1, n}), rowBuf, drx.RowMajor); err != nil {
			log.Fatal(err)
		}
	}
	cStats := a.FS().Stats()

	// Consumer 2: Fortran-order scan, column slabs — same file.
	a.FS().ResetStats()
	colBuf := make([]byte, n*8)
	for j := 0; j < n; j++ {
		if err := a.Read(drx.NewBox([]int{0, j}, []int{n, j + 1}), colBuf, drx.ColMajor); err != nil {
			log.Fatal(err)
		}
	}
	fStats := a.FS().Stats()

	// Verify a full Fortran-order materialization element by element.
	colVals, err := a.ReadFloat64s(full, drx.ColMajor)
	if err != nil {
		log.Fatal(err)
	}
	checked := 0
	grid.BoxOf(grid.Shape{n, n}).Iterate(grid.RowMajor, func(idx []int) bool {
		i, j := idx[0], idx[1]
		if colVals[j*n+i] != truth(i, j) {
			log.Fatalf("Fortran read wrong at (%d,%d)", i, j)
		}
		checked++
		return true
	})

	fmt.Printf("verified %d elements in Fortran order (no out-of-core transpose)\n", checked)
	fmt.Printf("C-order scan:       %5d requests, %4d seeks, sim %v\n", cStats.Requests(), cStats.Seeks(), cStats.Elapsed())
	fmt.Printf("Fortran-order scan: %5d requests, %4d seeks, sim %v\n", fStats.Requests(), fStats.Seeks(), fStats.Elapsed())
	fmt.Printf("both scans move the same %s; the Fortran scan pays one seek per chunk (%d),\n",
		"bytes", fStats.Seeks())
	fmt.Printf("where a plain row-major file would pay one seek per element (~%d) — see drxbench -exp e2\n", n*(n-1))
}
