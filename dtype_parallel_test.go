package drxmp

import (
	"bytes"
	"fmt"
	"testing"

	"drxmp/internal/cluster"
	"drxmp/internal/grid"
)

// TestAllDTypesParallelRoundTrip drives every element type the paper
// names ("integer, double and complex" — plus the narrower variants)
// through the full parallel path: collective create, zone writes,
// extension, and a cold full read. Data is compared byte-for-byte, so
// element size handling in chunk layout, section runs and transposition
// is exercised for each width.
func TestAllDTypesParallelRoundTrip(t *testing.T) {
	dtypes := []struct {
		name string
		dt   DType
	}{
		{"int32", Int32},
		{"int64", Int64},
		{"float32", Float32},
		{"float64", Float64},
		{"complex64", Complex64},
		{"complex128", Complex128},
	}
	for _, tc := range dtypes {
		t.Run(tc.name, func(t *testing.T) {
			es := tc.dt.Size()
			// stamp writes a deterministic, dtype-width pattern for the
			// element at global index idx.
			stamp := func(idx []int, out []byte) {
				seed := byte(7*idx[0] + 13*idx[1] + 1)
				for i := 0; i < es; i++ {
					out[i] = seed + byte(i)
				}
			}
			err := cluster.Run(3, func(c *cluster.Comm) error {
				f, err := Create(c, "dt-"+tc.name, Options{
					DType:      tc.dt,
					ChunkShape: []int{2, 3},
					Bounds:     []int{7, 8},
				})
				if err != nil {
					return err
				}
				defer f.Close()
				writeBoxes := func() error {
					boxes, err := f.MyZone()
					if err != nil {
						return err
					}
					for _, box := range boxes {
						buf := make([]byte, int(box.Volume())*es)
						at := 0
						box.Iterate(grid.RowMajor, func(idx []int) bool {
							stamp(idx, buf[at*es:])
							at++
							return true
						})
						if err := f.WriteSection(box, buf, RowMajor); err != nil {
							return err
						}
					}
					return c.Barrier()
				}
				if err := writeBoxes(); err != nil {
					return err
				}
				// Grow dimension 1 past a chunk boundary and restamp
				// everything (the new cells included).
				if err := f.Extend(1, 4); err != nil {
					return err
				}
				if err := writeBoxes(); err != nil {
					return err
				}
				// Cold full verify on every rank, in column-major memory
				// order to exercise the transposing gather for width es.
				full := NewBox([]int{0, 0}, f.Bounds())
				got := make([]byte, int(full.Volume())*es)
				if err := f.ReadSection(full, got, ColMajor); err != nil {
					return err
				}
				want := make([]byte, es)
				at := 0
				var bad error
				full.Iterate(grid.ColMajor, func(idx []int) bool {
					stamp(idx, want)
					if !bytes.Equal(got[at*es:(at+1)*es], want) {
						bad = fmt.Errorf("%s rank %d: element %v corrupted", tc.name, c.Rank(), idx)
						return false
					}
					at++
					return true
				})
				return bad
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDTypeSizesDriveLayout pins the chunk byte sizes the metadata
// derives for each element type (2x3 chunks).
func TestDTypeSizesDriveLayout(t *testing.T) {
	want := map[DType]int64{
		Int32: 24, Int64: 48, Float32: 24, Float64: 48,
		Complex64: 48, Complex128: 96,
	}
	err := cluster.Run(1, func(c *cluster.Comm) error {
		for dt, bytes := range want {
			f, err := Create(c, fmt.Sprintf("sz-%d", dt), Options{
				DType: dt, ChunkShape: []int{2, 3}, Bounds: []int{4, 6},
			})
			if err != nil {
				return err
			}
			if got := f.Meta().ChunkBytes(); got != bytes {
				f.Close()
				return fmt.Errorf("%v: chunk bytes = %d, want %d", dt, got, bytes)
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
