package drxmp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"drxmp/internal/cluster"
	"drxmp/internal/grid"
)

// TestQuickDistArrayMatchesShadow drives randomized box Puts and Gets
// through the GA-style distributed array: rank 0 scripts the traffic
// (so the shadow is deterministic), every rank holds its zone, and
// sections crossing zone boundaries must reassemble exactly — the
// "access the entire principal array as if local" model of Section II.
func TestQuickDistArrayMatchesShadow(t *testing.T) {
	f := func(seed int64, ranksRaw, n0, n1 uint8) bool {
		ranks := 1 + int(ranksRaw%5)
		nb := []int{4 + int(n0%10), 4 + int(n1%10)}
		rng := rand.New(rand.NewSource(seed))

		// Script: alternating put/get boxes with fresh values.
		type op struct {
			box  Box
			vals []float64
		}
		randBox := func() Box {
			lo := []int{rng.Intn(nb[0]), rng.Intn(nb[1])}
			hi := []int{lo[0] + 1 + rng.Intn(nb[0]-lo[0]), lo[1] + 1 + rng.Intn(nb[1]-lo[1])}
			return NewBox(lo, hi)
		}
		puts := make([]op, 6)
		for i := range puts {
			box := randBox()
			vals := make([]float64, box.Volume())
			for j := range vals {
				vals[j] = float64(i*10000 + j)
			}
			puts[i] = op{box: box, vals: vals}
		}
		gets := make([]Box, 4)
		for i := range gets {
			gets[i] = randBox()
		}

		// Shadow of the whole principal array, fully computed before the
		// ranks start (read-only inside the SPMD region).
		shadow := make([]float64, nb[0]*nb[1])
		for _, p := range puts {
			at := 0
			p.box.Iterate(grid.RowMajor, func(idx []int) bool {
				shadow[idx[0]*nb[1]+idx[1]] = p.vals[at]
				at++
				return true
			})
		}

		err := cluster.Run(ranks, func(c *cluster.Comm) error {
			f, err := Create(c, "daprop", Options{
				DType: Float64, ChunkShape: []int{2, 2}, Bounds: nb,
			})
			if err != nil {
				return err
			}
			defer f.Close()
			da, err := f.Distribute(RowMajor)
			if err != nil {
				return err
			}
			defer da.Free()
			for i, p := range puts {
				// Rank (i mod ranks) performs the put; everyone fences.
				if c.Rank() == i%ranks {
					if err := da.PutSection(p.box, encodeF64(p.vals)); err != nil {
						return err
					}
				}
				if err := da.Fence(); err != nil {
					return err
				}
				// Interleave verifying gets from a different rank.
				if i < len(gets) && c.Rank() == (i+1)%ranks {
					// Shadow state after puts 0..i.
					want := make([]float64, len(shadow))
					// (recomputed locally: deterministic script)
					tmp := make([]float64, len(shadow))
					for j := 0; j <= i; j++ {
						at := 0
						puts[j].box.Iterate(grid.RowMajor, func(idx []int) bool {
							tmp[idx[0]*nb[1]+idx[1]] = puts[j].vals[at]
							at++
							return true
						})
					}
					copy(want, tmp)
					g := gets[i]
					dst := make([]byte, g.Volume()*8)
					if err := da.GetSection(g, dst); err != nil {
						return err
					}
					at := 0
					var bad error
					g.Iterate(grid.RowMajor, func(idx []int) bool {
						got := f64At(dst, at)
						if got != want[idx[0]*nb[1]+idx[1]] {
							bad = fmt.Errorf("after put %d: get(%v) at %v = %v, want %v",
								i, g, idx, got, want[idx[0]*nb[1]+idx[1]])
							return false
						}
						at++
						return true
					})
					if bad != nil {
						return bad
					}
				}
				if err := da.Fence(); err != nil {
					return err
				}
			}
			// Final: every rank reads the full array and compares with
			// the complete shadow.
			full := NewBox([]int{0, 0}, nb)
			dst := make([]byte, full.Volume()*8)
			if err := da.GetSection(full, dst); err != nil {
				return err
			}
			for i := range shadow {
				if got := f64At(dst, i); got != shadow[i] {
					return fmt.Errorf("rank %d final: element %d = %v, want %v", c.Rank(), i, got, shadow[i])
				}
			}
			return nil
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// f64At decodes the i-th little-endian float64 in b.
func f64At(b []byte, i int) float64 {
	var bits uint64
	for j := 0; j < 8; j++ {
		bits |= uint64(b[i*8+j]) << (8 * j)
	}
	return math.Float64frombits(bits)
}

// TestDistArrayFlushRoundTrip checkpoints a distributed array into the
// extendible file and reads it back cold.
func TestDistArrayFlushRoundTrip(t *testing.T) {
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := Create(c, "daflush", Options{
			DType: Float64, ChunkShape: []int{2, 3}, Bounds: []int{10, 9},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		da, err := f.Distribute(RowMajor)
		if err != nil {
			return err
		}
		defer da.Free()
		// Each rank stamps its own zone through the local buffer.
		box := da.LocalBox()
		local := da.LocalData()
		at := 0
		box.Iterate(grid.RowMajor, func(idx []int) bool {
			v := float64(100*idx[0] + idx[1])
			bits := math.Float64bits(v)
			for j := 0; j < 8; j++ {
				local[at*8+j] = byte(bits >> (8 * j))
			}
			at++
			return true
		})
		if err := da.Fence(); err != nil {
			return err
		}
		if err := da.FlushToFile(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		full := NewBox([]int{0, 0}, f.Bounds())
		got, err := f.ReadSectionFloat64s(full, RowMajor)
		if err != nil {
			return err
		}
		at = 0
		var bad error
		full.Iterate(grid.RowMajor, func(idx []int) bool {
			if got[at] != float64(100*idx[0]+idx[1]) {
				bad = fmt.Errorf("rank %d: file(%v) = %v", c.Rank(), idx, got[at])
				return false
			}
			at++
			return true
		})
		return bad
	})
	if err != nil {
		t.Fatal(err)
	}
}
