package drxmp_test

import (
	"fmt"
	"math"

	"drxmp"
	"drxmp/internal/cluster"
)

// Example shows the DRX-MP life cycle on four SPMD ranks: collective
// creation, a collective extension of a non-record dimension, zone
// queries from the replicated metadata, and a collective zone write
// followed by a full verification read.
func Example() {
	err := cluster.Run(4, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "example", drxmp.Options{
			DType:      drxmp.Float64,
			ChunkShape: []int{2, 3},
			Bounds:     []int{10, 10},
		})
		if err != nil {
			return err
		}
		defer f.Close()

		// Extend dimension 1 — impossible without reorganization in a
		// conventional array file; a metadata-only operation here.
		if err := f.Extend(1, 2); err != nil {
			return err
		}

		my, err := f.MyZone()
		if err != nil {
			return err
		}
		box := my[0]
		vals := make([]float64, box.Volume())
		for i := range vals {
			vals[i] = float64(c.Rank())
		}
		if err := f.WriteSectionAll(box, f64bytes(vals), drxmp.RowMajor); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Println("bounds:", f.Bounds())
			fmt.Println("chunks:", f.Chunks())
			owner, _ := f.OwnerOf([]int{9, 11})
			fmt.Println("owner of (9,11):", owner)
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// bounds: [10 12]
	// chunks: 20
	// owner of (9,11): 3
}

func f64bytes(vals []float64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		u := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			out[i*8+b] = byte(u >> (8 * b))
		}
	}
	return out
}
