// Command drxserve is the array-as-a-service front end: it opens (or
// demo-creates) extendible arrays and serves their sections over HTTP
// to many concurrent remote clients, with per-file admission control,
// cross-client request coalescing, and single-flight cold fills
// (package internal/serve).
//
// Usage:
//
//	drxserve [flags] <path> [<path>...]          serve existing arrays
//	drxserve -demo <n>x<m> [flags]               serve a demo array "demo"
//
// Each <path> names a disk-backed array pair (<path>.xmd + .xta...);
// the array is served as its base name. Example:
//
//	drxserve -addr :8080 -cache 67108864 -window 1ms /data/climate
//	curl 'localhost:8080/v1/arrays/climate/section?lo=0,0&hi=16,16' -o part.bin
//	curl 'localhost:8080/v1/stats'
//	curl 'localhost:8080/readyz'     # 503 while draining after SIGTERM
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
	"drxmp/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	servers := flag.Int("servers", 4, "pfs I/O server count (demo arrays / open)")
	stripe := flag.Int64("stripe", 64<<10, "pfs stripe size in bytes")
	window := flag.Duration("window", 500*time.Microsecond, "coalescing batch window (0 disables)")
	maxReqs := flag.Int("max-inflight", 64, "admission: max in-flight requests per array (0 = unbounded)")
	maxBytes := flag.Int64("max-inflight-bytes", 256<<20, "admission: max in-flight payload bytes per array (0 = unbounded)")
	maxQueued := flag.Int("max-queued", 256, "admission: max queued requests per array before shedding with 503 (0 = unbounded)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request handling timeout (0 disables)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	cache := flag.Int64("cache", 64<<20, "unified extent cache budget per array in bytes (0 disables)")
	readAhead := flag.Int64("readahead", 0, "sieve read-ahead in bytes")
	par := flag.Int("par", 0, "per-array independent I/O parallelism (0 = GOMAXPROCS)")
	demo := flag.String("demo", "", "serve an in-memory demo float64 array of this shape, e.g. 256x256")
	demoChunk := flag.Int("demo-chunk", 64, "demo array chunk edge")
	flag.Parse()
	if *demo == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: drxserve [flags] <path>... | drxserve -demo <n>x<m> [flags]")
		os.Exit(2)
	}

	tuning := drxmp.Tuning{Parallelism: *par, CacheBytes: *cache, ReadAheadBytes: *readAhead}
	cfg := serve.Config{
		CoalesceWindow:      *window,
		MaxInFlightRequests: *maxReqs,
		MaxInFlightBytes:    *maxBytes,
		MaxQueuedRequests:   *maxQueued,
		RequestTimeout:      *reqTimeout,
	}

	// The server is one rank: a front end over the shared store, not a
	// compute job. cluster.Run(1) provides the communicator the library
	// expects and joins when serving ends.
	err := cluster.Run(1, func(c *cluster.Comm) error {
		srv := serve.New(cfg)
		type served struct {
			name string
			f    *drxmp.File
		}
		var files []served
		teardown := false
		defer func() {
			if teardown {
				return
			}
			for _, s := range files {
				s.f.Close()
			}
		}()
		if *demo != "" {
			f, err := demoArray(c, *demo, *demoChunk, *servers, *stripe, tuning)
			if err != nil {
				return err
			}
			files = append(files, served{"demo", f})
			if err := srv.Register("demo", f); err != nil {
				return err
			}
			fmt.Printf("drxserve: serving demo array %q (%v)\n", "demo", f.Bounds())
		}
		for _, path := range flag.Args() {
			f, err := drxmp.OpenWith(c, path, drxmp.OpenOptions{
				FS:     pfs.Options{Servers: *servers, StripeSize: *stripe},
				Tuning: tuning,
			})
			if err != nil {
				return fmt.Errorf("open %s: %w", path, err)
			}
			name := filepath.Base(path)
			files = append(files, served{name, f})
			if err := srv.Register(name, f); err != nil {
				return err
			}
			fmt.Printf("drxserve: serving %q from %s (%v)\n", name, path, f.Bounds())
		}

		httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
		errCh := make(chan error, 1)
		go func() { errCh <- httpSrv.ListenAndServe() }()
		fmt.Printf("drxserve: listening on %s\n", *addr)

		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case err := <-errCh:
			return err
		case <-sig:
			fmt.Println("drxserve: shutting down")
			// Flip readiness first so load balancers and drxclient.Ready
			// stop steering new work here, then drain in-flight requests
			// within the shutdown budget.
			srv.SetDraining(true)
			ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
			defer cancel()
			err := httpSrv.Shutdown(ctx)
			// With the handlers drained, make every buffered write
			// durable before tearing the files down: PUT sections
			// absorbed into the write-behind cache only exist in memory
			// until a Sync flushes them, and the old close-only path
			// silently dropped both sync and close failures.
			teardown = true
			for _, s := range files {
				if serr := s.f.Sync(); serr != nil {
					fmt.Fprintf(os.Stderr, "drxserve: sync %s: %v\n", s.name, serr)
					if err == nil {
						err = fmt.Errorf("sync %s: %w", s.name, serr)
					}
				}
			}
			for _, s := range files {
				if cerr := s.f.Close(); cerr != nil {
					fmt.Fprintf(os.Stderr, "drxserve: close %s: %v\n", s.name, cerr)
					if err == nil {
						err = fmt.Errorf("close %s: %w", s.name, cerr)
					}
				}
			}
			return err
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "drxserve:", err)
		os.Exit(1)
	}
}

// demoArray creates an in-memory float64 array of the given NxM...
// shape, seeded with a deterministic ramp so clients have bytes to
// fetch.
func demoArray(c *cluster.Comm, shape string, chunk, servers int, stripe int64, tuning drxmp.Tuning) (*drxmp.File, error) {
	var bounds []int
	for _, part := range strings.Split(shape, "x") {
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -demo shape %q", shape)
		}
		bounds = append(bounds, n)
	}
	chunkShape := make([]int, len(bounds))
	for i := range chunkShape {
		chunkShape[i] = chunk
	}
	f, err := drxmp.Create(c, "demo", drxmp.Options{
		DType: drxmp.Float64, ChunkShape: chunkShape, Bounds: bounds,
		FS:     pfs.Options{Servers: servers, StripeSize: stripe},
		Tuning: tuning,
	})
	if err != nil {
		return nil, err
	}
	full := drxmp.NewBox(make([]int, len(bounds)), bounds)
	vals := make([]float64, full.Volume())
	for i := range vals {
		vals[i] = float64(i)
	}
	if err := f.WriteSectionFloat64s(full, vals, drxmp.RowMajor); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}
