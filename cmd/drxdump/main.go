// Command drxdump inspects a DRX extendible array file pair
// (<path>.xmd + <path>.xta...): metadata, axial vectors, chunk map, and
// an optional consistency check of the mapping function.
//
// Usage:
//
//	drxdump [-json] [-grid] [-check] <path>
package main

import (
	"flag"
	"fmt"
	"os"

	"drxmp/internal/grid"
	"drxmp/internal/meta"
)

func main() {
	jsonOut := flag.Bool("json", false, "dump metadata as JSON")
	gridOut := flag.Bool("grid", false, "print the chunk-address grid (rank 2 only)")
	check := flag.Bool("check", false, "verify the mapping function is a bijection")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: drxdump [-json] [-grid] [-check] <path>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	blob, err := os.ReadFile(path + ".xmd")
	if err != nil {
		fatal(err)
	}
	m, err := meta.Decode(blob)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		out, err := m.MarshalJSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Printf("array      : %s\n", path)
		fmt.Printf("dtype      : %v\n", m.DType)
		fmt.Printf("chunk order: %v\n", m.MemOrder)
		fmt.Printf("chunk shape: %v (%d bytes)\n", m.ChunkShape, m.ChunkBytes())
		fmt.Printf("elem bounds: %v\n", m.ElemBounds)
		fmt.Printf("chunk grid : %v (%d chunks, %s data)\n", m.Space.Bounds(), m.Space.Total(), bytesHuman(m.FileBytes()))
		fmt.Printf("axial records: %d\n", m.Space.NumRecords())
		fmt.Print(m.Space.Dump())
	}

	if *gridOut {
		if m.Rank() != 2 {
			fmt.Fprintln(os.Stderr, "drxdump: -grid requires a rank-2 array")
			os.Exit(2)
		}
		b := m.Space.Bounds()
		width := len(fmt.Sprint(m.Space.Total() - 1))
		for i := 0; i < b[0]; i++ {
			for j := 0; j < b[1]; j++ {
				q, err := m.Space.Map([]int{i, j})
				if err != nil {
					fatal(err)
				}
				if j > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("%*d", width, q)
			}
			fmt.Println()
		}
	}

	if *check {
		seen := make(map[int64]bool, m.Space.Total())
		ok := true
		idx := make([]int, m.Rank())
		grid.BoxOf(grid.Shape(m.Space.Bounds())).Iterate(grid.RowMajor, func(ci []int) bool {
			q, err := m.Space.Map(ci)
			if err != nil || q < 0 || q >= m.Space.Total() || seen[q] {
				fmt.Fprintf(os.Stderr, "drxdump: mapping broken at %v (q=%d, err=%v)\n", ci, q, err)
				ok = false
				return false
			}
			seen[q] = true
			inv, err := m.Space.Inverse(q, idx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "drxdump: inverse broken at %d: %v\n", q, err)
				ok = false
				return false
			}
			for d := range inv {
				if inv[d] != ci[d] {
					fmt.Fprintf(os.Stderr, "drxdump: inverse(%d) = %v, want %v\n", q, inv, ci)
					ok = false
					return false
				}
			}
			return true
		})
		if ok {
			fmt.Printf("check: OK — F* is a bijection over %d chunks and F*⁻¹ inverts it\n", m.Space.Total())
		} else {
			os.Exit(1)
		}
	}
}

func bytesHuman(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drxdump:", err)
	os.Exit(1)
}
