// Command drxgen creates and grows synthetic extendible array files for
// the examples, drxdump and the benchmark harness.
//
// Usage:
//
//	drxgen -path /tmp/demo -bounds 10x10 -chunk 2x3 -dtype float64 \
//	       -grow 1:3,0:2,0:2 -fill -servers 2
//
// creates /tmp/demo.xmd and /tmp/demo.xta.s* with the given initial
// bounds, applies the growth schedule (dim:by pairs), and optionally
// fills every element with the deterministic workload value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"drxmp/drx"
	"drxmp/internal/dtype"
	"drxmp/internal/grid"
	"drxmp/internal/pfs"
	"drxmp/internal/workload"
)

func main() {
	path := flag.String("path", "", "output path (creates <path>.xmd and <path>.xta.s*)")
	boundsS := flag.String("bounds", "10x10", "initial element bounds, e.g. 10x10")
	chunkS := flag.String("chunk", "2x3", "chunk shape, e.g. 2x3")
	dtypeS := flag.String("dtype", "float64", "element type (int32,int64,float32,float64,complex64,complex128)")
	growS := flag.String("grow", "", "growth schedule dim:by[,dim:by...], element units")
	fill := flag.Bool("fill", false, "fill all elements with the deterministic workload values")
	servers := flag.Int("servers", 1, "parallel file system servers")
	stripe := flag.Int64("stripe", 64<<10, "stripe size in bytes")
	flag.Parse()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "usage: drxgen -path <path> [flags]; see -h")
		os.Exit(2)
	}
	bounds, err := parseShape(*boundsS)
	if err != nil {
		fatal(err)
	}
	chunk, err := parseShape(*chunkS)
	if err != nil {
		fatal(err)
	}
	dt, err := dtype.Parse(*dtypeS)
	if err != nil {
		fatal(err)
	}
	a, err := drx.Create(*path, drx.Options{
		DType:      dt,
		ChunkShape: chunk,
		Bounds:     bounds,
		FS:         pfs.Options{Backend: pfs.Disk, Servers: *servers, StripeSize: *stripe},
	})
	if err != nil {
		fatal(err)
	}
	if *growS != "" {
		for _, step := range strings.Split(*growS, ",") {
			parts := strings.SplitN(step, ":", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad growth step %q (want dim:by)", step))
			}
			dim, err1 := strconv.Atoi(parts[0])
			by, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fatal(fmt.Errorf("bad growth step %q", step))
			}
			if err := a.Extend(dim, by); err != nil {
				fatal(err)
			}
		}
	}
	if *fill {
		full := grid.BoxOf(grid.Shape(a.Bounds()))
		if err := a.WriteFloat64s(full, workload.FillBox(full, grid.RowMajor), drx.RowMajor); err != nil {
			fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("created %s: dtype=%v bounds=%v chunk=%v chunks=%d\n",
		*path, dt, a.Bounds(), a.ChunkShape(), a.Chunks())
}

func parseShape(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad shape %q: %w", s, err)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drxgen:", err)
	os.Exit(1)
}
