// Command drxbench regenerates every figure and experiment of the
// reproduction (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	drxbench -exp all            # everything (figures + E1..E24)
//	drxbench -exp fig1           # one experiment
//	drxbench -exp e4 -scale full # full-size run
//	drxbench -exp e7 -csv        # CSV output
//	drxbench -exp e16 -par 16    # parallel section I/O, wider sweep
//	drxbench -exp e17 -cpar 16   # parallel collective, wider sweep
//	drxbench -exp e20 -cache 4194304  # read-cache ablation, fixed 4 MiB budget
//	drxbench -exp e23 -spill 8388608  # tiered cache, fixed 8 MiB spill budget
//	drxbench -exp e23 -adaptive      # tiered cache, adaptive controller everywhere
//	drxbench -benchjson BENCH_collective.json  # collective perf artifact
//	                             # (scheduler/cb_nodes + e19 write-behind
//	                             #  + e20 read-cache + e23 tiered-cache
//	                             #  + e24 placement rows)
//
// Experiments: fig1 fig2 fig3 e1..e24 (e11-e15 are design ablations,
// e16 is the parallel-vs-serial section I/O study, e17 the parallel
// two-phase collective study, e18 the elevator-scheduler / adaptive
// cb_nodes ablation, e19 the write-behind collective-buffering
// ablation, e20 the unified-file-cache read ablation: cold/warm
// re-reads, data sieving on strided reads, and read-ahead scans, e21
// the erasure-coded degraded-read ablation: straggler avoidance and
// dead-server reconstruction vs wait-on-straggler reads, e22 the
// resilient-client ablation: plain vs retrying vs hedged clients
// against a straggling, flaky serving tier, e23 the tiered-cache
// ablation: RAM-only vs local-disk spill vs spill plus the adaptive
// sieve/read-ahead controller on an oversized-working-set re-read,
// e24 the aggregator-placement ablation: byte-cyclic vs zone-curve vs
// cache-affinity domains on repeated slab rewrites, plus elected vs
// uncoordinated watermark flushers).
//
// Flags: -exp, -scale, -csv, -list, -par (e16 worker sweep bound),
// -cpar (e17 worker sweep bound), -cache (e20 cache budget in bytes;
// 0 sizes the budget to the array), -spill (e23 spill-tier budget in
// bytes; 0 sizes it to the array), -adaptive (force the adaptive
// controller on in every cached e23 config), -benchjson (write the
// collective perf artifact and exit).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"drxmp/internal/exp"
	"drxmp/internal/report"
)

var experiments = []struct {
	name string
	desc string
	run  func(exp.Scale) []*report.Table
}{
	{"fig1", "Fig. 1: 2-D extendible array layout + 4-process zones", func(exp.Scale) []*report.Table { return exp.Fig1() }},
	{"fig2", "Fig. 2: the four allocation schemes on 8x8", func(exp.Scale) []*report.Table { return exp.Fig2() }},
	{"fig3", "Fig. 3: 3-D extendible array + axial vectors", func(exp.Scale) []*report.Table { return exp.Fig3() }},
	{"e1", "extension cost: axial vs reorganizing formats", exp.E1ExtendCost},
	{"e2", "access order: row-major file vs chunked axial file", exp.E2AccessOrder},
	{"e3", "address resolution latency: F* vs row-major vs B-tree", exp.E3MapLatency},
	{"e4", "collective zone-read scaling over P ranks", exp.E4Scaling},
	{"e5", "independent vs two-phase collective I/O", exp.E5Collective},
	{"e6", "chunk size vs stripe size", exp.E6ChunkStripe},
	{"e7", "format comparison workload set", exp.E7Formats},
	{"e8", "element access paths: local / RMA / file", exp.E8RMA},
	{"e9", "parallel extension, no-reorganization invariant", exp.E9ParallelExtend},
	{"e10", "on-the-fly transposition vs explicit transpose", exp.E10Transpose},
	{"e11", "layout ablation under arbitrary growth (Fig. 2 quantified)", exp.E11LayoutAblation},
	{"e12", "uninterrupted-expansion merging ablation", exp.E12MergeAblation},
	{"e13", "record lookup: binary search vs linear scan", exp.E13SearchAblation},
	{"e14", "chunk cache (Mpool) size sweep", exp.E14CacheAblation},
	{"e15", "transport ablation: in-process vs loopback TCP", exp.E15TransportAblation},
	{"e16", "parallel vs serial section I/O (sharded pool + run-group workers)", exp.E16ParallelIO},
	{"e17", "parallel two-phase collective (per-aggregator workers + pfs server queues)", exp.E17CollectiveParallelism},
	{"e18", "elevator scheduling + adaptive cb_nodes ablation (incl. straggler servers)", exp.E18SchedulerCBNodes},
	{"e19", "write-behind collective buffering ablation (immediate / watermark / close-only)", exp.E19WriteBehind},
	{"e20", "unified file cache read ablation (cold/warm re-read, data sieving, read-ahead)", exp.E20ReadCache},
	{"e21", "erasure-coded degraded reads (healthy / wait-straggler / degraded-straggler / degraded-dead)", exp.E21DegradedReads},
	{"e22", "resilient client vs straggling/flaky serving tier (plain / retry / hedged)", exp.E22RetryHedge},
	{"e23", "tiered extent cache (RAM-only / local-disk spill / spill + adaptive sieve & read-ahead)", exp.E23TieredCache},
	{"e24", "aggregator placement (byte-cyclic / zone-curve / cache-affinity) + elected per-region flushers", exp.E24Placement},
}

func main() {
	which := flag.String("exp", "all", "experiment to run (all, fig1..fig3, e1..e24)")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	list := flag.Bool("list", false, "list experiments and exit")
	parFlag := flag.Int("par", exp.DefaultParallelism, "max section-I/O parallelism swept by e16")
	cparFlag := flag.Int("cpar", exp.DefaultCollectiveParallelism, "max collective parallelism swept by e17")
	cacheFlag := flag.Int64("cache", 0, "read-cache budget in bytes for e20 (0 sizes it to the array)")
	spillFlag := flag.Int64("spill", 0, "spill-tier budget in bytes for e23 (0 sizes it to the array)")
	adaptiveFlag := flag.Bool("adaptive", false, "force the adaptive sieve/read-ahead controller on in every cached e23 config")
	benchJSON := flag.String("benchjson", "", "write the collective benchmark rows (scheduler/cb_nodes, e19 write-behind, e20 read-cache) to this JSON file and exit")
	flag.Parse()
	if *parFlag > 0 {
		exp.DefaultParallelism = *parFlag
	}
	if *cparFlag > 0 {
		exp.DefaultCollectiveParallelism = *cparFlag
	}
	if *cacheFlag > 0 {
		exp.DefaultCacheBytes = *cacheFlag
	}
	if *spillFlag > 0 {
		exp.DefaultSpillBytes = *spillFlag
	}
	exp.DefaultAdaptive = *adaptiveFlag

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-6s %s\n", e.name, e.desc)
		}
		return
	}
	var sc exp.Scale
	switch *scaleFlag {
	case "quick":
		sc = exp.Quick
	case "full":
		sc = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "drxbench: unknown scale %q (quick|full)\n", *scaleFlag)
		os.Exit(2)
	}

	if *benchJSON != "" {
		if err := exp.WriteCollectiveBenchJSON(*benchJSON, sc); err != nil {
			fmt.Fprintf(os.Stderr, "drxbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}

	names := strings.Split(strings.ToLower(*which), ",")
	ran := 0
	for _, e := range experiments {
		if !selected(names, e.name) {
			continue
		}
		ran++
		fmt.Printf("### %s — %s\n\n", e.name, e.desc)
		for _, t := range e.run(sc) {
			if *csv {
				t.RenderCSV(os.Stdout)
				fmt.Println()
			} else {
				t.Render(os.Stdout)
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "drxbench: no experiment matches %q (use -list)\n", *which)
		os.Exit(2)
	}
}

func selected(names []string, name string) bool {
	for _, n := range names {
		if n == "all" || n == name {
			return true
		}
	}
	return false
}
