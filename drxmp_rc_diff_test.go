package drxmp_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

// Differential suite for the read side of the unified extent cache:
// data sieving, read-ahead, the memory budget's LRU eviction, and the
// combination with write-behind must all be invisible to the data.
// Every variant drives the same interleaved collective/independent
// read-write rounds as the write-behind suite and must come out
// byte-identical to the cache-off baseline.

// rcVariant is one cache configuration under test.
type rcVariant struct {
	name  string
	wb    int64 // write-behind policy
	cache int64 // CacheBytes budget
	ra    int64 // ReadAheadBytes
	sieve int64 // IO().SieveSize override (0 = stripe)
}

func rcVariants() []rcVariant {
	return []rcVariant{
		{name: "off"},                                        // the PR 4 baseline
		{name: "cache", cache: 1 << 20},                      // sieving, ample budget
		{name: "cache-ra", cache: 1 << 20, ra: 4 << 10},      // + read-ahead
		{name: "cache-tiny", cache: 2 << 10},                 // constant eviction pressure
		{name: "cache-wb", cache: 1 << 20, wb: -1},           // + close-only write-behind
		{name: "cache-wb-tiny", cache: 2 << 10, wb: -1},      // dirty flush-on-evict in play
		{name: "cache-sieve4k", cache: 1 << 20, sieve: 4096}, // coarse sieve blocks
	}
}

func rcCreate(c *cluster.Comm, name string, sh collShape, v rcVariant) (*drxmp.File, error) {
	f, err := drxmp.Create(c, name, drxmp.Options{
		DType: drxmp.Float64, ChunkShape: sh.chunk, Bounds: sh.bounds,
		FS: pfs.Options{
			Servers: 4, StripeSize: 1 << 10, Scheduler: pfs.Elevator,
		},
		Tuning: drxmp.Tuning{
			CollectiveParallelism: 8,
			WriteBehindBytes:      v.wb,
			CacheBytes:            v.cache,
			ReadAheadBytes:        v.ra,
		},
	})
	if err != nil {
		return nil, err
	}
	f.IO().SieveSize = v.sieve
	return f, nil
}

// TestReadCacheDifferentialIdentical drives interleaved rounds —
// overlapping collective writes, collective reads of shifted sections,
// independent re-reads (twice, so the second is served warm), a Sync
// mid-epoch, then a full independent readback — through every cache
// variant, requiring byte-identical files and read buffers against the
// cache-off baseline.
func TestReadCacheDifferentialIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs in the dedicated collective race step")
	}
	const ranks = 4
	variants := rcVariants()
	for _, sh := range collShapes() {
		t.Run(sh.name, func(t *testing.T) {
			full := drxmp.NewBox(make([]int, len(sh.bounds)), sh.bounds)
			fullBytes := make([][]byte, len(variants))
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				files := make([]*drxmp.File, len(variants))
				for i, v := range variants {
					f, err := rcCreate(c, fmt.Sprintf("rc-%s-%s", v.name, sh.name), sh, v)
					if err != nil {
						return err
					}
					defer f.Close()
					files[i] = f
				}
				for round := 0; round < 3; round++ {
					wbox := slabBox(sh.bounds, ranks, c.Rank(), round)
					data := rankData(c.Rank(), wbox, int64(90+round))
					for _, f := range files {
						if err := f.WriteSectionAll(wbox, data, drxmp.RowMajor); err != nil {
							return err
						}
					}
					// Collective read of a shifted overlapping section, then
					// the same section independently TWICE — the second
					// independent read runs against a warm cache.
					rbox := slabBox(sh.bounds, ranks, (c.Rank()+1)%ranks, round+1)
					var ref []byte
					for i, f := range files {
						got := make([]byte, rbox.Volume()*8)
						if err := f.ReadSectionAll(rbox, got, drxmp.RowMajor); err != nil {
							return err
						}
						for pass := 0; pass < 2; pass++ {
							ind := make([]byte, rbox.Volume()*8)
							if err := f.ReadSection(rbox, ind, drxmp.RowMajor); err != nil {
								return err
							}
							if !bytes.Equal(got, ind) {
								return fmt.Errorf("rank %d round %d pass %d: %s independent read differs from its collective read",
									c.Rank(), round, pass, variants[i].name)
							}
						}
						if i == 0 {
							ref = got
						} else if !bytes.Equal(ref, got) {
							return fmt.Errorf("rank %d round %d: %s read differs from %s",
								c.Rank(), round, variants[i].name, variants[0].name)
						}
					}
					if round == 1 {
						for _, f := range files {
							if err := f.Sync(); err != nil {
								return err
							}
						}
					}
				}
				// Sync, then rank 0 reads each full file independently: the
				// cache-served view and the store must agree everywhere.
				for _, f := range files {
					if err := f.Sync(); err != nil {
						return err
					}
				}
				if c.Rank() == 0 {
					for i, f := range files {
						buf := make([]byte, full.Volume()*8)
						if err := f.ReadSection(full, buf, drxmp.RowMajor); err != nil {
							return err
						}
						fullBytes[i] = buf
					}
				}
				return c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(variants); i++ {
				if !bytes.Equal(fullBytes[0], fullBytes[i]) {
					t.Errorf("file under %s differs from %s baseline", variants[i].name, variants[0].name)
				}
			}
		})
	}
}

// TestReadCacheDirtyStraddle pins the dirty-boundary rule: an
// independent cached read straddling the edge of a deferred collective
// write must stitch dirty cache bytes and sieve-fetched store bytes
// together exactly as the no-cache flush-then-read baseline does.
func TestReadCacheDirtyStraddle(t *testing.T) {
	const ranks = 2
	const n = 64
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		variants := []rcVariant{{name: "off"}, {name: "cache-wb", cache: 1 << 20, wb: -1}}
		sh := collShape{"straddle", []int{n, n}, []int{8, 8}}
		var ref []byte
		for i, v := range variants {
			f, err := rcCreate(c, "rcstraddle-"+v.name, sh, v)
			if err != nil {
				return err
			}
			defer f.Close()
			// Seed the whole array through the store, then a deferred
			// collective write over the TOP half only: its extents are
			// dirty, the bottom half is clean store data.
			seed := rankData(c.Rank(), slabBox([]int{n, n}, ranks, c.Rank(), 0), 3)
			if err := f.WriteSection(slabBox([]int{n, n}, ranks, c.Rank(), 0), seed, drxmp.RowMajor); err != nil {
				return err
			}
			if err := f.Comm().Barrier(); err != nil {
				return err
			}
			top := drxmp.NewBox([]int{0, c.Rank() * n / ranks}, []int{n / 2, (c.Rank() + 1) * n / ranks})
			data := rankData(c.Rank(), top, 5)
			if err := f.WriteSectionAll(top, data, drxmp.RowMajor); err != nil {
				return err
			}
			// The straddling read: rows n/2-8 .. n/2+8 cross the dirty
			// boundary on every column.
			box := drxmp.NewBox([]int{n/2 - 8, 0}, []int{n/2 + 8, n})
			got := make([]byte, box.Volume()*8)
			if err := f.ReadSection(box, got, drxmp.RowMajor); err != nil {
				return err
			}
			if i == 0 {
				ref = got
			} else if !bytes.Equal(ref, got) {
				return fmt.Errorf("rank %d: %s straddling read differs from baseline", c.Rank(), v.name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReadCacheWarmAfterSync pins flush-keeps-warm end to end: after a
// deferred collective write and a Sync, a sectioned re-read is served
// from the cache — zero additional server read requests — and still
// byte-identical to the written data.
func TestReadCacheWarmAfterSync(t *testing.T) {
	const ranks = 2
	const n = 32
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "rcwarm", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{8, 8}, Bounds: []int{n, n},
			FS: pfs.Options{Servers: 2, StripeSize: 512},
			Tuning: drxmp.Tuning{
				WriteBehindBytes: -1,
				CacheBytes:       1 << 20,
			},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		box := slabBox([]int{n, n}, ranks, c.Rank(), 0)
		data := rankData(c.Rank(), box, 11)
		if err := f.WriteSectionAll(box, data, drxmp.RowMajor); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		reads := f.FS().Stats().Reads()
		got := make([]byte, box.Volume()*8)
		if err := f.ReadSection(box, got, drxmp.RowMajor); err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			return fmt.Errorf("rank %d: warm post-Sync read wrong", c.Rank())
		}
		if after := f.FS().Stats().Reads(); after != reads {
			return fmt.Errorf("rank %d: post-Sync re-read issued %d server reads (cache went cold)",
				c.Rank(), after-reads)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReadCacheKnobPlumbing pins the drxmp-level wiring: options,
// setters, accessors, Cached, CacheStats, and the
// disable-releases-clean-extents rule.
func TestReadCacheKnobPlumbing(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "rcknob", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{4, 4}, Bounds: []int{8, 8},
			Tuning: drxmp.Tuning{
				CacheBytes:     1 << 16,
				ReadAheadBytes: 512,
			},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		if f.CacheBytes() != 1<<16 || f.ReadAhead() != 512 {
			return fmt.Errorf("knobs = (%d, %d), want (65536, 512)", f.CacheBytes(), f.ReadAhead())
		}
		box := drxmp.NewBox([]int{0, 0}, []int{8, 8})
		data := rankData(0, box, 21)
		if err := f.WriteSection(box, data, drxmp.RowMajor); err != nil {
			return err
		}
		got := make([]byte, box.Volume()*8)
		if err := f.ReadSection(box, got, drxmp.RowMajor); err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			return fmt.Errorf("cached read wrong")
		}
		if f.Cached() == 0 {
			return fmt.Errorf("nothing cached after a cached read")
		}
		st := f.CacheStats()
		if st.Misses == 0 || st.SieveFetched == 0 {
			return fmt.Errorf("cache stats not accounted: %+v", st)
		}
		if err := f.ReadSection(box, got, drxmp.RowMajor); err != nil {
			return err
		}
		if f.CacheStats().Hits == 0 {
			return fmt.Errorf("warm re-read not a hit")
		}
		f.SetCacheBytes(0)
		if f.Cached() != 0 {
			return fmt.Errorf("SetCacheBytes(0) left %d cached bytes", f.Cached())
		}
		if err := f.ReadSection(box, got, drxmp.RowMajor); err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			return fmt.Errorf("read wrong after disabling cache")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReadCacheEvictionStressRace hammers the cache from every rank
// under a tiny budget (constant eviction and dirty flush-on-evict
// racing reads and Syncs) on real-time elevator servers. Run with
// -race (the CI collective race step matches this name).
func TestReadCacheEvictionStressRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite runs in the dedicated collective race step")
	}
	const ranks = 4
	const n = 64
	var mu sync.Mutex
	seen := map[int]bool{}
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "rcstress", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{8, 8}, Bounds: []int{n, n},
			FS: pfs.Options{
				Servers: 4, StripeSize: 512, Scheduler: pfs.Elevator,
				Cost: pfs.CostModel{RequestOverhead: 20 * 1000, RealTime: true}, // 20 µs
			},
			Tuning: drxmp.Tuning{
				CollectiveParallelism: 8,
				Parallelism:           4,
				WriteBehindBytes:      2048,
				CacheBytes:            4096, // tiny: every round evicts
				ReadAheadBytes:        1024,
			},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		for round := 0; round < 6; round++ {
			wbox := slabBox([]int{n, n}, ranks, (c.Rank()+round)%ranks, round%3)
			data := rankData(c.Rank(), wbox, int64(round))
			if err := f.WriteSectionAll(wbox, data, drxmp.RowMajor); err != nil {
				return err
			}
			rbox := slabBox([]int{n, n}, ranks, c.Rank(), 0)
			buf := make([]byte, rbox.Volume()*8)
			if err := f.ReadSection(rbox, buf, drxmp.RowMajor); err != nil {
				return err
			}
			if err := f.ReadSectionAll(rbox, buf, drxmp.RowMajor); err != nil {
				return err
			}
			if round%2 == 1 {
				if err := f.Sync(); err != nil {
					return err
				}
			}
		}
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != ranks {
		t.Fatalf("only %d ranks completed", len(seen))
	}
}

// TestReadCacheParallelFirstTouchRace pins the lazy cache resolution:
// a fresh handle whose FIRST cached operation is a multi-run parallel
// ReadSection resolves the shared cache from concurrent run-group
// workers — the memoized pointer must be race-free. Run with -race
// (the CI collective race step matches this name).
func TestReadCacheParallelFirstTouchRace(t *testing.T) {
	const n = 64
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "rcfirsttouch", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{8, 8}, Bounds: []int{n, n},
			FS: pfs.Options{Servers: 4, StripeSize: 512},
			Tuning: drxmp.Tuning{
				Parallelism: 8,
				CacheBytes:  1 << 20,
			},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		box := drxmp.NewBox([]int{0, 0}, []int{n, n})
		data := rankData(0, box, 31)
		if err := f.WriteSection(box, data, drxmp.RowMajor); err != nil {
			return err
		}
		got := make([]byte, box.Volume()*8)
		if err := f.ReadSection(box, got, drxmp.RowMajor); err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			return fmt.Errorf("parallel first-touch cached read wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistArrayRefreshCached: the Global-Array re-read path — seed,
// Distribute, one-sided update, Checkpoint, then Refresh re-reads the
// checkpointed state into the local zones through the (warm) cache.
func TestDistArrayRefreshCached(t *testing.T) {
	const ranks = 2
	const n = 16
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "rcrefresh", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{4, 4}, Bounds: []int{n, n},
			FS: pfs.Options{Servers: 2, StripeSize: 512},
			Tuning: drxmp.Tuning{
				WriteBehindBytes: -1,
				CacheBytes:       1 << 20,
			},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		box := slabBox([]int{n, n}, ranks, c.Rank(), 0)
		seed := make([]float64, box.Volume())
		for i := range seed {
			seed[i] = float64(c.Rank()*100 + i)
		}
		if err := f.WriteSectionFloat64s(box, seed, drxmp.RowMajor); err != nil {
			return err
		}
		da, err := f.Distribute(drxmp.RowMajor)
		if err != nil {
			return err
		}
		defer da.Free()
		if err := da.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := da.Set([]int{n - 1, n - 1}, 777); err != nil {
				return err
			}
		}
		if err := da.Fence(); err != nil {
			return err
		}
		if err := da.Checkpoint(); err != nil {
			return err
		}
		// Scribble locally, then Refresh must restore the checkpointed
		// state from the file.
		for i := range da.LocalData() {
			da.LocalData()[i] = 0xEE
		}
		if err := da.Refresh(); err != nil {
			return err
		}
		if got, err := da.Get([]int{box.Lo[0], 0}); err != nil || got != seed[0] {
			return fmt.Errorf("rank %d: Get after Refresh = %v/%v, want %v", c.Rank(), got, err, seed[0])
		}
		if got, err := da.Get([]int{n - 1, n - 1}); err != nil || got != 777 {
			return fmt.Errorf("rank %d: updated element after Refresh = %v/%v, want 777", c.Rank(), got, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
