package drxmp_test

import (
	"fmt"
	"testing"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

// Differential suite for erasure-coded striping: parity is a storage
// redundancy knob, never a semantics knob. The same collective
// write/overwrite/read workload through m=0 (the pre-parity layout),
// m=1 (XOR parity) and m=2 (Reed-Solomon) must produce byte-identical
// read results — and with parity on, the same reads must stay
// byte-identical when a server is dead and every touched stripe is
// served by reconstruction.

// parityVariant is one redundancy configuration under test.
type parityVariant struct {
	name   string
	parity int
}

func parityVariants() []parityVariant {
	return []parityVariant{
		{"m0", 0}, // the baseline: parity off, pre-parity layout
		{"m1", 1}, // single parity (XOR)
		{"m2", 2}, // double parity (Reed-Solomon)
	}
}

// TestErasureParityVariantsIdentical runs a collective write plus
// overlapping-section overwrites and reads through every parity level,
// requiring all read buffers to match the m=0 baseline exactly.
func TestErasureParityVariantsIdentical(t *testing.T) {
	const ranks = 4
	variants := parityVariants()
	for _, sh := range []struct {
		name   string
		chunk  []int
		bounds []int
	}{
		{"2d-even", []int{8, 8}, []int{32, 32}},
		{"2d-odd", []int{5, 7}, []int{23, 29}},
		{"3d", []int{4, 3, 5}, []int{8, 9, 10}},
	} {
		t.Run(sh.name, func(t *testing.T) {
			full := drxmp.NewBox(make([]int, len(sh.bounds)), sh.bounds)
			rankReads := make([][][]byte, ranks)
			for r := range rankReads {
				rankReads[r] = make([][]byte, len(variants))
			}
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				for i, v := range variants {
					f, err := drxmp.Create(c, fmt.Sprintf("parity-%s-%s", v.name, sh.name), drxmp.Options{
						DType: drxmp.Float64, ChunkShape: sh.chunk, Bounds: sh.bounds,
						FS: pfs.Options{Servers: 6, StripeSize: 512, Parity: v.parity},
					})
					if err != nil {
						return err
					}
					// Collective full write, then per-rank overlapping
					// overwrites (the parity read-modify-write path), then
					// an overlapping collective read per rank.
					data := make([]byte, full.Volume()*8)
					for j := range data {
						data[j] = byte(j*13 + 5)
					}
					if err := f.WriteSectionAll(full, data, drxmp.RowMajor); err != nil {
						f.Close()
						return fmt.Errorf("%s write: %w", v.name, err)
					}
					sub := overwriteBox(sh.bounds, c.Rank())
					patch := make([]byte, sub.Volume()*8)
					for j := range patch {
						patch[j] = byte(c.Rank()*37 + j)
					}
					if err := f.WriteSectionAll(sub, patch, drxmp.RowMajor); err != nil {
						f.Close()
						return fmt.Errorf("%s overwrite: %w", v.name, err)
					}
					buf := make([]byte, full.Volume()*8)
					if err := f.ReadSectionAll(full, buf, drxmp.RowMajor); err != nil {
						f.Close()
						return fmt.Errorf("%s read: %w", v.name, err)
					}
					rankReads[c.Rank()][i] = buf
					if err := f.Close(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < ranks; r++ {
				base := rankReads[r][0]
				if base == nil {
					t.Fatalf("rank %d baseline read missing", r)
				}
				for i, v := range variants[1:] {
					if string(rankReads[r][i+1]) != string(base) {
						t.Fatalf("rank %d: %s read differs from the m=0 baseline", r, v.name)
					}
				}
			}
		})
	}
}

// overwriteBox carves a rank-dependent sub-box that overlaps its
// neighbours, exercising partial-stripe parity read-modify-writes.
func overwriteBox(bounds []int, rank int) drxmp.Box {
	lo := make([]int, len(bounds))
	hi := make([]int, len(bounds))
	for d, b := range bounds {
		lo[d] = (rank + d) % (b / 2)
		hi[d] = lo[d] + b/2
	}
	return drxmp.NewBox(lo, hi)
}

// TestErasureDegradedEqualsHealthy reads the same parity-striped file
// healthy and with a dead server: the degraded buffers must be
// byte-identical, with the reconstruction counters proving the
// degraded pass actually took the fault path.
func TestErasureDegradedEqualsHealthy(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "parity-degraded-diff", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{8, 8}, Bounds: []int{32, 32},
			FS: pfs.Options{Servers: 6, StripeSize: 512, Parity: 2},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		full := drxmp.NewBox([]int{0, 0}, []int{32, 32})
		data := make([]byte, full.Volume()*8)
		for i := range data {
			data[i] = byte(i ^ 0x55)
		}
		if err := f.WriteSection(full, data, drxmp.RowMajor); err != nil {
			return err
		}
		healthy := make([]byte, full.Volume()*8)
		if err := f.ReadSection(full, healthy, drxmp.RowMajor); err != nil {
			return err
		}
		f.FS().SetInjector(&pfs.FaultPoint{Server: 0, Op: pfs.FaultReads, Permanent: true})
		f.FS().ResetStats()
		degraded := make([]byte, full.Volume()*8)
		if err := f.ReadSection(full, degraded, drxmp.RowMajor); err != nil {
			return fmt.Errorf("degraded read: %w", err)
		}
		if string(degraded) != string(healthy) {
			return fmt.Errorf("degraded read differs from healthy read")
		}
		if st := f.FS().Stats(); st.DegradedReads == 0 {
			return fmt.Errorf("degraded pass recorded no reconstruction")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
