# Mirrors .github/workflows/ci.yml so local runs and CI stay in sync.
GO ?= go

.PHONY: all build vet fmt test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mpool ./... -short

bench:
	$(GO) test -bench=. -benchtime=1x ./...

ci: build vet fmt test race bench
