# Mirrors .github/workflows/ci.yml so local runs and CI stay in sync.
GO ?= go

.PHONY: all build vet fmt test race race-collective race-serve race-fault race-client race-spill race-place bench bench-collective ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mpool ./... -short

# Collective-I/O differential + queue stress tests under the race
# detector (drxmp_collective_par_test.go, drxmp_wb_diff_test.go,
# drxmp_rc_diff_test.go, internal/pfs queue/close-flusher stress,
# internal/mpiio collective + file-cache suites). The heavy suites skip
# under the -short race target above and run full-size here.
race-collective:
	$(GO) test -race -run 'Collective|WriteBehind|CloseFlusher|ReadCache|FileCache' . ./internal/pfs ./internal/mpiio

# Serving-tier e2e under the race detector: the HTTP front end's
# admission control, cross-client coalescing and single-flight fills
# are all cross-goroutine by construction (drxmp_serve_diff_test.go's
# 32-client cold burst, internal/serve unit suites).
race-serve:
	$(GO) test -race -run 'Serve|Admission|Coalescer|SingleFlight' . ./internal/serve ./internal/exp

# Fault-path + erasure suites under the race detector: degraded reads
# race late straggler completions against reconstruction by design
# (private-buffer handoff in internal/pfs), and the fault regression
# tests drive injected failures through the queue, cache, serving and
# collective layers (parity differential + degraded e2e at the root,
# internal/ec property tests, internal/pfs degraded/fault suites,
# internal/mpiio fallback suites, internal/serve panic-path pins).
race-fault:
	$(GO) test -race -run 'Erasure|Degraded|Fault' . ./internal/ec ./internal/pfs ./internal/mpiio ./internal/serve

# Resilient-client suites under the race detector: hedged reads race
# two attempts against each other by design, the breaker and latency
# tracker are shared across calls, and the chaos e2e suites
# (chaos_e2e_test.go) kill and restart the serving tier under a
# concurrent retrying workload while checking for leaked goroutines and
# admission budget. Admission-cancellation regressions ride along.
race-client:
	$(GO) test -race -count=1 ./internal/drxclient
	$(GO) test -race -run 'Chaos|AdmissionCancel|RequestTimeout|ShedOverload' . ./internal/serve

# Tiered-cache suites under the race detector: the spill store is
# shared by every reader of a file (demotions, promotions and punches
# interleave from concurrent ReadThrough calls), the adaptive
# controller retunes under the same lock, and the tiered differential
# pins the spill-off path byte-identical to the RAM-only stack.
race-spill:
	$(GO) test -race -count=1 ./internal/spill
	$(GO) test -race -run 'Spill|Tiered|Adaptive' . ./internal/mpiio ./internal/exp ./internal/serve

# Placement suites under the race detector: the policy carving is
# consulted concurrently by every rank of a collective, elected
# flushers interleave FlushOwned sweeps with other ranks' absorbs on
# the shared cache, and the root differential suite pins every policy
# byte-identical to the serial baseline with write-behind + spill on
# (internal/place property suite, drxmp_place_diff_test.go, the
# cbnodes policy regression and mpiio flush-election paths).
race-place:
	$(GO) test -race -count=1 ./internal/place
	$(GO) test -race -run 'Place|Affinity|FlushElect' . ./internal/mpiio

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Collective-benchmark smoke: one iteration of the Collective
# benchmarks (parallel vs serial two-phase, FIFO vs elevator
# scheduling, write-behind, and the read-cache warm/no-cache pair),
# plus the BENCH_collective.json artifact (MB/s + seeks for FIFO vs
# elevator, fixed vs adaptive cb_nodes, the E19 write-behind policy
# rows, the E20 read-cache no-cache/cold/warm rows, the ServeBench
# serving-tier rows: requests/s, coalesce ratio, single-flight hit
# rate, the E21 degraded-read rows: read p99 + reconstruction
# counters for healthy/wait-straggler/degraded regimes, the E22
# resilient-client rows: read p99 + hedge win rate for plain/retry/
# hedged clients, and the E24 placement rows: warm slab-rewrite MB/s +
# seeks + owned sweeps + domain-local exchange bytes) that tracks the
# perf trajectory across PRs.
bench-collective:
	$(GO) test -bench=Collective -benchtime=1x -run '^$$' .
	$(GO) run ./cmd/drxbench -benchjson BENCH_collective.json
	@cat BENCH_collective.json

ci: build vet fmt test race race-collective race-serve race-fault race-client race-spill race-place bench bench-collective
