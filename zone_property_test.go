package drxmp

import (
	"fmt"
	"testing"
	"testing/quick"

	"drxmp/internal/cluster"
	"drxmp/internal/grid"
)

// TestQuickZonesPartitionArray: for random ranks/chunk shapes/bounds,
// the per-rank zone boxes must tile the element domain exactly — every
// element in exactly one box of exactly one rank — and OwnerOf must
// agree with the tiling. This is the property that makes the paper's
// "each process determines whether an element is local or remote" model
// sound.
func TestQuickZonesPartitionArray(t *testing.T) {
	f := func(seed int64, ranksRaw, c0, c1, n0, n1 uint8) bool {
		ranks := 1 + int(ranksRaw%8)
		cs := []int{1 + int(c0%3), 1 + int(c1%4)}
		nb := []int{2 + int(n0%14), 2 + int(n1%14)}
		var failure error
		err := cluster.Run(ranks, func(c *cluster.Comm) error {
			f, err := Create(c, "zoneprop", Options{
				DType: Float64, ChunkShape: cs, Bounds: nb,
			})
			if err != nil {
				return err
			}
			defer f.Close()
			if c.Rank() != 0 {
				return nil
			}
			owner := make(map[string]int)
			for r := 0; r < ranks; r++ {
				boxes, err := f.ZoneBoxes(r)
				if err != nil {
					return err
				}
				for _, box := range boxes {
					var bad error
					box.Iterate(grid.RowMajor, func(idx []int) bool {
						key := fmt.Sprint(idx)
						if prev, dup := owner[key]; dup {
							bad = fmt.Errorf("element %v in zones of ranks %d and %d", idx, prev, r)
							return false
						}
						owner[key] = r
						// OwnerOf must agree with the box tiling.
						got, err := f.OwnerOf(idx)
						if err != nil {
							bad = err
							return false
						}
						if got != r {
							bad = fmt.Errorf("OwnerOf(%v) = %d, but the element lies in rank %d's zone", idx, got, r)
							return false
						}
						return true
					})
					if bad != nil {
						return bad
					}
				}
			}
			if want := nb[0] * nb[1]; len(owner) != want {
				return fmt.Errorf("zones cover %d of %d elements (ranks=%d chunks=%v bounds=%v)",
					len(owner), want, ranks, cs, nb)
			}
			return nil
		})
		if err != nil {
			failure = err
		}
		if failure != nil {
			t.Log(failure)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickZonesSurviveExtension: the partition property must continue
// to hold after arbitrary extensions (zones are recomputed over the
// grown chunk space; no element may be orphaned or double-owned).
func TestQuickZonesSurviveExtension(t *testing.T) {
	f := func(seed int64, dimRaw, byRaw uint8) bool {
		dim := int(dimRaw % 2)
		by := 1 + int(byRaw%7)
		err := cluster.Run(3, func(c *cluster.Comm) error {
			f, err := Create(c, "zonegrow", Options{
				DType: Float64, ChunkShape: []int{2, 3}, Bounds: []int{6, 6},
			})
			if err != nil {
				return err
			}
			defer f.Close()
			if err := f.Extend(dim, by); err != nil {
				return err
			}
			if c.Rank() != 0 {
				return nil
			}
			nb := f.Bounds()
			covered := 0
			for r := 0; r < 3; r++ {
				boxes, err := f.ZoneBoxes(r)
				if err != nil {
					return err
				}
				for _, box := range boxes {
					covered += int(box.Volume())
					// Boxes must stay inside the grown bounds.
					for d := 0; d < 2; d++ {
						if box.Lo[d] < 0 || box.Hi[d] > nb[d] {
							return fmt.Errorf("zone box %v escapes bounds %v", box, nb)
						}
					}
				}
			}
			if want := nb[0] * nb[1]; covered != want {
				return fmt.Errorf("after extend(%d,%d): zones cover %d of %d elements", dim, by, covered, want)
			}
			return nil
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
