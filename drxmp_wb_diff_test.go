package drxmp_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

// Differential suite for write-behind collective buffering: deferring
// the dispatch of collective writes behind the dirty-extent cache — at
// any watermark, including close-only — must be invisible to the data.
// Interleaved read/write rounds, overlapping rank sections, odd chunk
// shapes, and 2-D/3-D arrays all must come out byte-identical to the
// immediate-dispatch baseline of PR 3.

// wbVariant is one write-behind policy under test.
type wbVariant struct {
	name string
	wb   int64
}

func wbVariants() []wbVariant {
	return []wbVariant{
		{"immediate", 0},          // the PR 3 baseline
		{"watermark-4k", 4096},    // flushes every few collectives
		{"watermark-1m", 1 << 20}, // rarely crosses: mostly close-only
		{"close-only", -1},        // unbounded buffering
	}
}

// TestWriteBehindDifferentialIdentical drives interleaved read/write
// rounds — overlapping collective writes, collective reads between
// rounds, a final Sync, then a full independent readback — through
// every write-behind policy, requiring byte-identical files and read
// buffers against the immediate baseline.
func TestWriteBehindDifferentialIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs in the dedicated collective race step")
	}
	const ranks = 4
	variants := wbVariants()
	for _, sh := range collShapes() {
		t.Run(sh.name, func(t *testing.T) {
			full := drxmp.NewBox(make([]int, len(sh.bounds)), sh.bounds)
			fullBytes := make([][]byte, len(variants))
			rankReads := make([][][]byte, ranks)
			for r := range rankReads {
				rankReads[r] = make([][]byte, len(variants))
			}
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				files := make([]*drxmp.File, len(variants))
				for i, v := range variants {
					f, err := drxmp.Create(c, fmt.Sprintf("wb-%s-%s", v.name, sh.name), drxmp.Options{
						DType: drxmp.Float64, ChunkShape: sh.chunk, Bounds: sh.bounds,
						FS: pfs.Options{
							Servers: 4, StripeSize: 1 << 10, Scheduler: pfs.Elevator,
						},
						Tuning: drxmp.Tuning{
							CollectiveParallelism: 8,
							WriteBehindBytes:      v.wb,
						},
					})
					if err != nil {
						return err
					}
					defer f.Close()
					files[i] = f
				}

				// Interleaved rounds: overlapping collective writes, then a
				// collective read of a shifted overlapping section — the read
				// must flush exactly the dirty extents it crosses.
				for round := 0; round < 3; round++ {
					wbox := slabBox(sh.bounds, ranks, c.Rank(), round)
					data := rankData(c.Rank(), wbox, int64(70+round))
					for _, f := range files {
						if err := f.WriteSectionAll(wbox, data, drxmp.RowMajor); err != nil {
							return err
						}
					}
					rbox := slabBox(sh.bounds, ranks, (c.Rank()+1)%ranks, round+1)
					var ref []byte
					for i, f := range files {
						got := make([]byte, rbox.Volume()*8)
						if err := f.ReadSectionAll(rbox, got, drxmp.RowMajor); err != nil {
							return err
						}
						if i == 0 {
							ref = got
						} else if !bytes.Equal(ref, got) {
							return fmt.Errorf("rank %d round %d: %s collective read differs from %s",
								c.Rank(), round, variants[i].name, variants[0].name)
						}
					}
				}

				// Final overlapping collective read, captured per rank.
				rbox := slabBox(sh.bounds, ranks, c.Rank(), 3)
				for i, f := range files {
					got := make([]byte, rbox.Volume()*8)
					if err := f.ReadSectionAll(rbox, got, drxmp.RowMajor); err != nil {
						return err
					}
					rankReads[c.Rank()][i] = got
				}

				// Sync, then rank 0 reads each full file through the
				// independent path: after Sync even cross-rank independent
				// reads must see every deferred byte.
				for _, f := range files {
					if err := f.Sync(); err != nil {
						return err
					}
				}
				if c.Rank() == 0 {
					for i, f := range files {
						buf := make([]byte, full.Volume()*8)
						if err := f.ReadSection(full, buf, drxmp.RowMajor); err != nil {
							return err
						}
						fullBytes[i] = buf
					}
				}
				return c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(variants); i++ {
				if !bytes.Equal(fullBytes[0], fullBytes[i]) {
					t.Errorf("file under %s differs from %s baseline", variants[i].name, variants[0].name)
				}
				for r := range rankReads {
					if !bytes.Equal(rankReads[r][0], rankReads[r][i]) {
						t.Errorf("rank %d: %s collective read differs from %s", r, variants[i].name, variants[0].name)
					}
				}
			}
		})
	}
}

// TestWriteBehindCloseFlushes: deferred bytes written close-only are on
// the store after Close with no Sync — the flush-before-close
// guarantee at the drxmp layer.
func TestWriteBehindCloseFlushes(t *testing.T) {
	const ranks = 2
	const n = 32
	stores := map[string]*pfs.FS{}
	sizes := map[string]int64{}
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		for _, v := range []wbVariant{{"immediate", 0}, {"close-only", -1}} {
			f, err := drxmp.Create(c, "wbclose-"+v.name, drxmp.Options{
				DType: drxmp.Float64, ChunkShape: []int{8, 8}, Bounds: []int{n, n},
				FS:     pfs.Options{Servers: 2, StripeSize: 512},
				Tuning: drxmp.Tuning{WriteBehindBytes: v.wb},
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				stores[v.name] = f.FS()
				sizes[v.name] = f.FS().Size()
			}
			box := slabBox([]int{n, n}, ranks, c.Rank(), 0)
			data := rankData(c.Rank(), box, 5)
			if err := f.WriteSectionAll(box, data, drxmp.RowMajor); err != nil {
				return err
			}
			// Close with NO Sync: the deferred bytes must still land.
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both stores are closed; their raw contents (read through the
	// post-Close synchronous path) must be identical.
	size := sizes["immediate"]
	if size == 0 {
		size = n * n * 8
	}
	want := make([]byte, size)
	got := make([]byte, size)
	if _, err := stores["immediate"].ReadAt(want, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := stores["close-only"].ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("close-only write-behind store differs from immediate after Close")
	}
}

// TestWriteBehindKnobPlumbing pins the drxmp-level wiring: option,
// setter (disable flushes), accessor, and Dirty.
func TestWriteBehindKnobPlumbing(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "wbknob", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{4, 4}, Bounds: []int{8, 8},
			Tuning: drxmp.Tuning{WriteBehindBytes: -1},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		if got := f.WriteBehind(); got != -1 {
			return fmt.Errorf("WriteBehind() = %d, want -1", got)
		}
		box := drxmp.NewBox([]int{0, 0}, []int{8, 8})
		data := rankData(0, box, 9)
		if err := f.WriteSectionAll(box, data, drxmp.RowMajor); err != nil {
			return err
		}
		if f.Dirty() == 0 {
			return fmt.Errorf("no dirty bytes buffered under close-only write-behind")
		}
		if err := f.SetWriteBehind(0); err != nil { // disable: must flush
			return err
		}
		if f.Dirty() != 0 {
			return fmt.Errorf("SetWriteBehind(0) left %d dirty bytes", f.Dirty())
		}
		if got := f.WriteBehind(); got != 0 {
			return fmt.Errorf("after SetWriteBehind(0): %d", got)
		}
		got := make([]byte, box.Volume()*8)
		if err := f.ReadSection(box, got, drxmp.RowMajor); err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			return fmt.Errorf("flushed bytes wrong after disable")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistArrayCheckpointWriteBehind: the Global-Array workflow on top
// of write-behind — Distribute (collective read), PutSection into
// remote zones, Checkpoint (FlushToFile + Sync) — leaves the store
// holding exactly the distributed state, and Get observes it.
func TestDistArrayCheckpointWriteBehind(t *testing.T) {
	const ranks = 4
	const n = 24
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "wbga", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{6, 6}, Bounds: []int{n, n},
			FS:     pfs.Options{Servers: 2, StripeSize: 512},
			Tuning: drxmp.Tuning{WriteBehindBytes: -1},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		// Seed through the collective path (rides write-behind), then
		// distribute: Distribute's collective read must flush coherently.
		box := slabBox([]int{n, n}, ranks, c.Rank(), 0)
		seed := make([]float64, box.Volume())
		for i := range seed {
			seed[i] = float64(c.Rank()*1000 + i)
		}
		if err := f.WriteSectionFloat64s(box, seed, drxmp.RowMajor); err != nil {
			return err
		}
		da, err := f.Distribute(drxmp.RowMajor)
		if err != nil {
			return err
		}
		defer da.Free()
		if got, err := da.Get([]int{box.Lo[0], 0}); err != nil || got != seed[0] {
			return fmt.Errorf("rank %d: Get = %v/%v, want %v", c.Rank(), got, err, seed[0])
		}
		// Rank 0 rewrites one remote row one-sidedly, then checkpoints.
		if err := da.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			row := drxmp.NewBox([]int{n - 1, 0}, []int{n, n})
			vals := make([]byte, row.Volume()*8)
			for i := range vals {
				vals[i] = byte(i + 3)
			}
			if err := da.PutSection(row, vals); err != nil {
				return err
			}
		}
		if err := da.Fence(); err != nil {
			return err
		}
		if err := da.Checkpoint(); err != nil {
			return err
		}
		// After Checkpoint every rank's independent read sees the row.
		row := drxmp.NewBox([]int{n - 1, 0}, []int{n, n})
		got := make([]byte, row.Volume()*8)
		if err := f.ReadSection(row, got, drxmp.RowMajor); err != nil {
			return err
		}
		for i := range got {
			if got[i] != byte(i+3) {
				return fmt.Errorf("rank %d: checkpointed byte %d = %d, want %d", c.Rank(), i, got[i], byte(i+3))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWriteBehindStressRace hammers write-behind from every rank under
// the elevator scheduler: concurrent collective write/read rounds with
// interleaved independent reads and Syncs, on real-time servers. Run
// with -race (the CI collective race step matches this name).
func TestWriteBehindStressRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite runs in the dedicated collective race step")
	}
	const ranks = 4
	const n = 64
	var mu sync.Mutex
	seen := map[int]bool{}
	err := cluster.Run(ranks, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "wbstress", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{8, 8}, Bounds: []int{n, n},
			FS: pfs.Options{
				Servers: 4, StripeSize: 512, Scheduler: pfs.Elevator,
				Cost: pfs.CostModel{RequestOverhead: 20 * 1000, RealTime: true}, // 20 µs
			},
			Tuning: drxmp.Tuning{
				CollectiveParallelism: 8,
				WriteBehindBytes:      2048,
			},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		for round := 0; round < 6; round++ {
			wbox := slabBox([]int{n, n}, ranks, (c.Rank()+round)%ranks, round%3)
			data := rankData(c.Rank(), wbox, int64(round))
			if err := f.WriteSectionAll(wbox, data, drxmp.RowMajor); err != nil {
				return err
			}
			// Independent read of a section this rank just helped write —
			// crosses dirty extents on this rank only.
			rbox := slabBox([]int{n, n}, ranks, c.Rank(), 0)
			buf := make([]byte, rbox.Volume()*8)
			if err := f.ReadSection(rbox, buf, drxmp.RowMajor); err != nil {
				return err
			}
			if round%2 == 1 {
				if err := f.Sync(); err != nil {
					return err
				}
			}
		}
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != ranks {
		t.Fatalf("only %d ranks completed", len(seen))
	}
}
