package drxmp_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"drxmp"
	"drxmp/internal/cluster"
	"drxmp/internal/pfs"
)

// Differential suite for the parallel two-phase collective: the
// collective-parallel, collective-serial, and independent I/O paths
// must produce byte-identical arrays across 2-D/3-D shapes, odd chunk
// sizes, and overlapping rank sections. These tests pin the tentpole
// invariant — fanning the aggregate and exchange stages across workers
// is invisible to the data.

// collShape is one differential scenario.
type collShape struct {
	name   string
	bounds []int
	chunk  []int
}

func collShapes() []collShape {
	return []collShape{
		{"2d-odd", []int{97, 53}, []int{13, 7}},
		{"2d-tall", []int{128, 24}, []int{16, 5}},
		{"3d", []int{24, 18, 20}, []int{5, 6, 7}},
	}
}

// slabBox carves bounds into `ranks` slabs along dim 0 and returns slab
// r, widened by `overlap` rows on each side (clipped). With overlap 0
// the slabs partition the array; with overlap > 0 neighbors share rows.
func slabBox(bounds []int, ranks, r, overlap int) drxmp.Box {
	q := (bounds[0] + ranks - 1) / ranks
	lo := make([]int, len(bounds))
	hi := append([]int(nil), bounds...)
	lo[0] = r * q
	if lo[0] > bounds[0] {
		lo[0] = bounds[0]
	}
	if end := (r + 1) * q; end < bounds[0] {
		hi[0] = end
	}
	lo[0] -= overlap
	if lo[0] < 0 {
		lo[0] = 0
	}
	hi[0] += overlap
	if hi[0] > bounds[0] {
		hi[0] = bounds[0]
	}
	return drxmp.NewBox(lo, hi)
}

// rankData derives a deterministic payload for (rank, box, salt) so the
// same bytes land in every array variant under test.
func rankData(r int, box drxmp.Box, salt int64) []byte {
	data := make([]byte, box.Volume()*8)
	rand.New(rand.NewSource(salt*1000 + int64(r))).Read(data)
	return data
}

// TestCollectiveParallelSerialIndependentIdentical writes disjoint
// slabs through the collective-parallel, collective-serial, and
// independent paths and requires the three resulting files to hold
// identical bytes; it then cross-reads overlapping sections through all
// three paths and requires identical buffers on every rank.
func TestCollectiveParallelSerialIndependentIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs in the dedicated collective race step")
	}
	const ranks = 4
	for _, sh := range collShapes() {
		t.Run(sh.name, func(t *testing.T) {
			full := drxmp.NewBox(make([]int, len(sh.bounds)), sh.bounds)
			fullBytes := make([][]byte, 3)
			rankReads := make([][3][]byte, ranks)
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				mk := func(name string, cpar int) (*drxmp.File, error) {
					return drxmp.Create(c, name, drxmp.Options{
						DType: drxmp.Float64, ChunkShape: sh.chunk, Bounds: sh.bounds,
						FS:     pfs.Options{Servers: 4, StripeSize: 1 << 10},
						Tuning: drxmp.Tuning{CollectiveParallelism: cpar},
					})
				}
				par8, err := mk("coll-par-"+sh.name, 8)
				if err != nil {
					return err
				}
				defer par8.Close()
				ser, err := mk("coll-ser-"+sh.name, -1)
				if err != nil {
					return err
				}
				defer ser.Close()
				ind, err := mk("coll-ind-"+sh.name, -1)
				if err != nil {
					return err
				}
				defer ind.Close()

				// Disjoint slab writes: collective (parallel and serial
				// aggregators) and independent must land the same bytes.
				box := slabBox(sh.bounds, ranks, c.Rank(), 0)
				data := rankData(c.Rank(), box, 1)
				if err := par8.WriteSectionAll(box, data, drxmp.RowMajor); err != nil {
					return err
				}
				if err := ser.WriteSectionAll(box, data, drxmp.RowMajor); err != nil {
					return err
				}
				if err := ind.WriteSection(box, data, drxmp.RowMajor); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}

				// Overlapping reads: every rank reads a slab widened into
				// its neighbors, through all three paths.
				rbox := slabBox(sh.bounds, ranks, c.Rank(), 3)
				var got [3][]byte
				for i := range got {
					got[i] = make([]byte, rbox.Volume()*8)
				}
				if err := par8.ReadSectionAll(rbox, got[0], drxmp.RowMajor); err != nil {
					return err
				}
				if err := ser.ReadSectionAll(rbox, got[1], drxmp.RowMajor); err != nil {
					return err
				}
				if err := par8.ReadSection(rbox, got[2], drxmp.RowMajor); err != nil {
					return err
				}
				rankReads[c.Rank()] = got

				// Rank 0 captures each file's full contents through the
				// independent path (no collective machinery involved).
				if c.Rank() == 0 {
					for i, f := range []*drxmp.File{par8, ser, ind} {
						buf := make([]byte, full.Volume()*8)
						if err := f.ReadSection(full, buf, drxmp.RowMajor); err != nil {
							return err
						}
						fullBytes[i] = buf
					}
				}
				return c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fullBytes[0], fullBytes[1]) {
				t.Error("collective-parallel file differs from collective-serial file")
			}
			if !bytes.Equal(fullBytes[0], fullBytes[2]) {
				t.Error("collective file differs from independently written file")
			}
			for r, got := range rankReads {
				if !bytes.Equal(got[0], got[1]) {
					t.Errorf("rank %d: parallel collective read differs from serial", r)
				}
				if !bytes.Equal(got[0], got[2]) {
					t.Errorf("rank %d: collective read differs from independent", r)
				}
			}
		})
	}
}

// TestCollectiveOverlappingWritesParallelSerialIdentical drives
// overlapping rank sections through collective writes: the outcome is
// defined (higher rank wins) and must not depend on the aggregator
// worker count.
func TestCollectiveOverlappingWritesParallelSerialIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs in the dedicated collective race step")
	}
	const ranks = 4
	for _, sh := range collShapes() {
		t.Run(sh.name, func(t *testing.T) {
			full := drxmp.NewBox(make([]int, len(sh.bounds)), sh.bounds)
			var parBytes, serBytes []byte
			err := cluster.Run(ranks, func(c *cluster.Comm) error {
				mk := func(name string, cpar int) (*drxmp.File, error) {
					return drxmp.Create(c, name, drxmp.Options{
						DType: drxmp.Float64, ChunkShape: sh.chunk, Bounds: sh.bounds,
						FS:     pfs.Options{Servers: 4, StripeSize: 1 << 10},
						Tuning: drxmp.Tuning{CollectiveParallelism: cpar},
					})
				}
				par8, err := mk("ovl-par-"+sh.name, 8)
				if err != nil {
					return err
				}
				defer par8.Close()
				ser, err := mk("ovl-ser-"+sh.name, -1)
				if err != nil {
					return err
				}
				defer ser.Close()

				for trial := 0; trial < 3; trial++ {
					box := slabBox(sh.bounds, ranks, c.Rank(), 2+trial)
					data := rankData(c.Rank(), box, int64(10+trial))
					if err := par8.WriteSectionAll(box, data, drxmp.RowMajor); err != nil {
						return err
					}
					if err := ser.WriteSectionAll(box, data, drxmp.RowMajor); err != nil {
						return err
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					parBytes = make([]byte, full.Volume()*8)
					if err := par8.ReadSection(full, parBytes, drxmp.RowMajor); err != nil {
						return err
					}
					serBytes = make([]byte, full.Volume()*8)
					if err := ser.ReadSection(full, serBytes, drxmp.RowMajor); err != nil {
						return err
					}
				}
				return c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(parBytes, serBytes) {
				t.Error("overlapping collective writes: parallel aggregators diverged from serial")
			}
		})
	}
}

// TestCollectiveParallelismKnob pins the knob plumbing: option, setter,
// and resolution.
func TestCollectiveParallelismKnob(t *testing.T) {
	err := cluster.Run(1, func(c *cluster.Comm) error {
		f, err := drxmp.Create(c, "knob", drxmp.Options{
			DType: drxmp.Float64, ChunkShape: []int{4, 4}, Bounds: []int{8, 8},
			Tuning: drxmp.Tuning{CollectiveParallelism: 6},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		if got := f.CollectiveParallelism(); got != 6 {
			return fmt.Errorf("CollectiveParallelism() = %d, want 6", got)
		}
		f.SetCollectiveParallelism(-1)
		if got := f.CollectiveParallelism(); got != 1 {
			return fmt.Errorf("after SetCollectiveParallelism(-1): %d, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
