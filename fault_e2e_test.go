package drxmp

import (
	"strings"
	"testing"
	"time"

	"drxmp/internal/cluster"
	"drxmp/internal/grid"
	"drxmp/internal/pfs"
)

// TestCollectiveReadFaultAllRanksAgree injects an I/O-server failure
// under a collective read and requires that (a) no rank hangs waiting
// for a peer that aborted, and (b) every rank observes the failure —
// the error-agreement contract of collective I/O.
func TestCollectiveReadFaultAllRanksAgree(t *testing.T) {
	const ranks = 4
	errs := make([]error, ranks)
	done := make(chan error, 1)
	go func() {
		done <- cluster.Run(ranks, func(c *cluster.Comm) error {
			f, err := Create(c, "fault-read", Options{
				DType:      Float64,
				ChunkShape: []int{2, 3},
				Bounds:     []int{10, 12},
			})
			if err != nil {
				return err
			}
			defer f.Close()
			full := NewBox([]int{0, 0}, f.Bounds())
			if c.Rank() == 0 {
				vals := make([]float64, full.Volume())
				if err := f.WriteSection(full, encodeF64(vals), RowMajor); err != nil {
					return err
				}
				// Reads fail from now on; every rank's collective must
				// notice even though only aggregators touch storage.
				f.FS().SetInjector(&pfs.FaultPoint{
					Server: pfs.AnyServer, Op: pfs.FaultReads, Permanent: true,
				})
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			boxes, err := f.MyZone()
			if err != nil {
				return err
			}
			box := full
			if len(boxes) > 0 {
				box = boxes[0]
			}
			buf := make([]byte, box.Volume()*8)
			errs[c.Rank()] = f.ReadSectionAll(box, buf, RowMajor)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("collective read with injected fault hung")
	}
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d did not observe the collective failure", r)
		}
		if !strings.Contains(err.Error(), "injected") && !strings.Contains(err.Error(), "collective aborted") {
			t.Fatalf("rank %d error lacks fault context: %v", r, err)
		}
	}
}

// TestCollectiveWriteFaultAllRanksAgree is the write-side counterpart:
// an aggregator whose flush fails must surface the error on all ranks.
func TestCollectiveWriteFaultAllRanksAgree(t *testing.T) {
	const ranks = 4
	errs := make([]error, ranks)
	done := make(chan error, 1)
	go func() {
		done <- cluster.Run(ranks, func(c *cluster.Comm) error {
			f, err := Create(c, "fault-write", Options{
				DType:      Float64,
				ChunkShape: []int{2, 3},
				Bounds:     []int{10, 12},
			})
			if err != nil {
				return err
			}
			defer f.Close()
			if c.Rank() == 0 {
				f.FS().SetInjector(&pfs.FaultPoint{
					Server: pfs.AnyServer, Op: pfs.FaultWrites, Permanent: true,
				})
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			boxes, err := f.MyZone()
			if err != nil {
				return err
			}
			box := NewBox([]int{0, 0}, []int{1, 1})
			if len(boxes) > 0 {
				box = boxes[0]
			}
			buf := make([]byte, box.Volume()*8)
			errs[c.Rank()] = f.WriteSectionAll(box, buf, RowMajor)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("collective write with injected fault hung")
	}
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d did not observe the collective write failure", r)
		}
	}
}

// TestIndependentIOFaultIsLocal verifies the non-collective path: a
// fault during one rank's independent read fails that rank only, and
// the file remains readable by everyone once the fault clears.
func TestIndependentIOFaultIsLocal(t *testing.T) {
	err := cluster.Run(2, func(c *cluster.Comm) error {
		f, err := Create(c, "fault-ind", Options{
			DType:      Float64,
			ChunkShape: []int{2, 3},
			Bounds:     []int{10, 12},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		full := NewBox([]int{0, 0}, f.Bounds())
		if c.Rank() == 0 {
			vals := make([]float64, full.Volume())
			for i := range vals {
				vals[i] = float64(i)
			}
			if err := f.WriteSection(full, encodeF64(vals), RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			f.FS().SetInjector(&pfs.FaultPoint{Server: pfs.AnyServer, Op: pfs.FaultReads})
			buf := make([]byte, full.Volume()*8)
			if err := f.ReadSection(full, buf, RowMajor); err == nil {
				return errFault("rank 1 independent read survived the fault")
			}
			f.FS().SetInjector(nil)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		got, err := f.ReadSectionFloat64s(full, RowMajor)
		if err != nil {
			return err
		}
		at := 0
		var bad error
		full.Iterate(grid.RowMajor, func(idx []int) bool {
			if got[at] != float64(at) {
				bad = errFault("data corrupted after transient fault")
				return false
			}
			at++
			return true
		})
		return bad
	})
	if err != nil {
		t.Fatal(err)
	}
}

type errFault string

func (e errFault) Error() string { return string(e) }
