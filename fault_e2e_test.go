package drxmp

import (
	"strings"
	"testing"
	"time"

	"drxmp/internal/cluster"
	"drxmp/internal/grid"
	"drxmp/internal/pfs"
)

// TestCollectiveReadFaultAllRanksAgree injects an I/O-server failure
// under a collective read and requires that (a) no rank hangs waiting
// for a peer that aborted, and (b) every rank observes the failure —
// the error-agreement contract of collective I/O.
func TestCollectiveReadFaultAllRanksAgree(t *testing.T) {
	const ranks = 4
	errs := make([]error, ranks)
	done := make(chan error, 1)
	go func() {
		done <- cluster.Run(ranks, func(c *cluster.Comm) error {
			f, err := Create(c, "fault-read", Options{
				DType:      Float64,
				ChunkShape: []int{2, 3},
				Bounds:     []int{10, 12},
			})
			if err != nil {
				return err
			}
			defer f.Close()
			full := NewBox([]int{0, 0}, f.Bounds())
			if c.Rank() == 0 {
				vals := make([]float64, full.Volume())
				if err := f.WriteSection(full, encodeF64(vals), RowMajor); err != nil {
					return err
				}
				// Reads fail from now on; every rank's collective must
				// notice even though only aggregators touch storage.
				f.FS().SetInjector(&pfs.FaultPoint{
					Server: pfs.AnyServer, Op: pfs.FaultReads, Permanent: true,
				})
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			boxes, err := f.MyZone()
			if err != nil {
				return err
			}
			box := full
			if len(boxes) > 0 {
				box = boxes[0]
			}
			buf := make([]byte, box.Volume()*8)
			errs[c.Rank()] = f.ReadSectionAll(box, buf, RowMajor)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("collective read with injected fault hung")
	}
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d did not observe the collective failure", r)
		}
		if !strings.Contains(err.Error(), "injected") && !strings.Contains(err.Error(), "collective aborted") {
			t.Fatalf("rank %d error lacks fault context: %v", r, err)
		}
	}
}

// TestCollectiveWriteFaultAllRanksAgree is the write-side counterpart:
// an aggregator whose flush fails must surface the error on all ranks.
func TestCollectiveWriteFaultAllRanksAgree(t *testing.T) {
	const ranks = 4
	errs := make([]error, ranks)
	done := make(chan error, 1)
	go func() {
		done <- cluster.Run(ranks, func(c *cluster.Comm) error {
			f, err := Create(c, "fault-write", Options{
				DType:      Float64,
				ChunkShape: []int{2, 3},
				Bounds:     []int{10, 12},
			})
			if err != nil {
				return err
			}
			defer f.Close()
			if c.Rank() == 0 {
				f.FS().SetInjector(&pfs.FaultPoint{
					Server: pfs.AnyServer, Op: pfs.FaultWrites, Permanent: true,
				})
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			boxes, err := f.MyZone()
			if err != nil {
				return err
			}
			box := NewBox([]int{0, 0}, []int{1, 1})
			if len(boxes) > 0 {
				box = boxes[0]
			}
			buf := make([]byte, box.Volume()*8)
			errs[c.Rank()] = f.WriteSectionAll(box, buf, RowMajor)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("collective write with injected fault hung")
	}
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d did not observe the collective write failure", r)
		}
	}
}

// TestIndependentIOFaultIsLocal verifies the non-collective path: a
// fault during one rank's independent read fails that rank only, and
// the file remains readable by everyone once the fault clears.
func TestIndependentIOFaultIsLocal(t *testing.T) {
	err := cluster.Run(2, func(c *cluster.Comm) error {
		f, err := Create(c, "fault-ind", Options{
			DType:      Float64,
			ChunkShape: []int{2, 3},
			Bounds:     []int{10, 12},
		})
		if err != nil {
			return err
		}
		defer f.Close()
		full := NewBox([]int{0, 0}, f.Bounds())
		if c.Rank() == 0 {
			vals := make([]float64, full.Volume())
			for i := range vals {
				vals[i] = float64(i)
			}
			if err := f.WriteSection(full, encodeF64(vals), RowMajor); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			f.FS().SetInjector(&pfs.FaultPoint{Server: pfs.AnyServer, Op: pfs.FaultReads})
			buf := make([]byte, full.Volume()*8)
			if err := f.ReadSection(full, buf, RowMajor); err == nil {
				return errFault("rank 1 independent read survived the fault")
			}
			f.FS().SetInjector(nil)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		got, err := f.ReadSectionFloat64s(full, RowMajor)
		if err != nil {
			return err
		}
		at := 0
		var bad error
		full.Iterate(grid.RowMajor, func(idx []int) bool {
			if got[at] != float64(at) {
				bad = errFault("data corrupted after transient fault")
				return false
			}
			at++
			return true
		})
		return bad
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultDegradedCollectiveReadByteIdentical kills one I/O server
// partway through a collective read of a parity-striped array
// (permanent fault after its first two read requests) and requires the
// collective to complete anyway: every rank's buffer byte-identical to
// the written data, served by erasure reconstruction instead of an
// error.
func TestFaultDegradedCollectiveReadByteIdentical(t *testing.T) {
	const ranks = 4
	bufs := make([][]byte, ranks)
	var degraded, reconBytes int64
	done := make(chan error, 1)
	go func() {
		done <- cluster.Run(ranks, func(c *cluster.Comm) error {
			f, err := Create(c, "fault-degraded", Options{
				DType:      Float64,
				ChunkShape: []int{8, 8},
				Bounds:     []int{32, 32},
				FS:         pfs.Options{Servers: 6, StripeSize: 512, Parity: 2},
			})
			if err != nil {
				return err
			}
			defer f.Close()
			full := NewBox([]int{0, 0}, f.Bounds())
			if c.Rank() == 0 {
				vals := make([]float64, full.Volume())
				for i := range vals {
					vals[i] = float64(i)*0.5 - 17
				}
				if err := f.WriteSection(full, encodeF64(vals), RowMajor); err != nil {
					return err
				}
				// Server 1 dies mid-collective: its first two read
				// requests are served, every later one fails permanently.
				f.FS().SetInjector(&pfs.FaultPoint{
					Server: 1, Op: pfs.FaultReads, After: 2, Permanent: true,
				})
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			buf := make([]byte, full.Volume()*8)
			if err := f.ReadSectionAll(full, buf, RowMajor); err != nil {
				return err
			}
			bufs[c.Rank()] = buf
			if err := c.Barrier(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				st := f.FS().Stats()
				degraded, reconBytes = st.DegradedReads, st.ReconstructBytes
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("degraded collective read hung")
	}
	want := make([]float64, 32*32)
	for i := range want {
		want[i] = float64(i)*0.5 - 17
	}
	wantBytes := encodeF64(want)
	for r, buf := range bufs {
		if buf == nil {
			t.Fatalf("rank %d returned no buffer", r)
		}
		if string(buf) != string(wantBytes) {
			t.Fatalf("rank %d read differs from the written data under a dead server", r)
		}
		if string(buf) != string(bufs[0]) {
			t.Fatalf("rank %d read differs from rank 0's", r)
		}
	}
	if degraded == 0 || reconBytes == 0 {
		t.Fatalf("no reconstruction recorded (degraded=%d bytes=%d): the dead server was never routed around", degraded, reconBytes)
	}
}

type errFault string

func (e errFault) Error() string { return string(e) }
